"""High-level simulation entry points (thin shims over :mod:`repro.engines`).

Two granularities are provided:

* :func:`simulate_single_pulse` propagates one pulse wave through the grid and
  returns the dense trigger-time matrix.  The default engine is the analytic
  solver of :mod:`repro.core.pulse_solver` (fast, exact under constraints
  (C1)/(C2)); ``engine="des"`` runs the full discrete-event simulation with
  identical per-link delays so the two can be compared.

* :func:`simulate_multi_pulse` runs the discrete-event simulator over a whole
  schedule of layer-0 pulses, optionally from random initial states, and
  returns the raw firing records -- the input of the stabilization analysis
  (Section 4.4).

Both helpers accept either a seed or a ready-made :class:`numpy.random.Generator`
so experiment harnesses can spawn independent child streams per run.

Since the engine redesign the actual execution lives in the registered
backends of :mod:`repro.engines` (``solver``, ``des``, ``clocktree``,
``array``); these shims resolve the backend through
:func:`~repro.engines.registry.get_engine` -- so unknown engine names fail
early with the list of registered engines -- hand it the caller's explicit
arrays and re-wrap the unified :class:`~repro.engines.base.RunResult` into the
historical result dataclasses.  The per-run draw order (and therefore the
bit-identical seed-stream contract) is owned by the engines and unchanged.

.. deprecated::
    The one true entry point is the engine API --
    ``get_engine(name).run(RunSpec(...))`` (see DESIGN.md, "One entry
    point").  These shims only serve callers holding pre-built arrays, they
    cannot express spec-only engines (the dense ``array`` backend rejects
    them), and they emit :class:`DeprecationWarning`.  New code should build
    a :class:`~repro.engines.base.RunSpec` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.parameters import TimeoutConfig, TimingConfig
from repro.core.pulse_solver import PulseSolution
from repro.core.topology import HexGrid, NodeId
# repro: allow-import[legacy shim: runner predates engines and forwards to them for compatibility]
from repro.engines.des import single_pulse_default_timeouts
# repro: allow-import[legacy shim: runner predates engines and forwards to them for compatibility]
from repro.engines.registry import get_engine
from repro.faults.models import FaultModel
from repro.simulation.links import DelayModel
from repro.simulation.network import TimerPolicy

__all__ = [
    "SinglePulseResult",
    "MultiPulseResult",
    "simulate_single_pulse",
    "simulate_multi_pulse",
    "default_timeouts",
]


def _make_rng(
    seed: Optional[int], rng: Optional[np.random.Generator]
) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def default_timeouts(
    grid: HexGrid,
    timing: TimingConfig,
    num_faults: int = 0,
    layer0_spread: float = 0.0,
    signal_duration: float = 0.0,
) -> TimeoutConfig:
    """Conservative Condition 2 timeouts from the Lemma 5 stable-skew bound.

    Alias of :func:`repro.engines.des.single_pulse_default_timeouts` (the
    logic moved there with the engine redesign); retained as the historical
    public name.
    """
    return single_pulse_default_timeouts(
        grid,
        timing,
        num_faults=num_faults,
        layer0_spread=layer0_spread,
        signal_duration=signal_duration,
    )


@dataclass
class SinglePulseResult:
    """Result of a single-pulse simulation run.

    Attributes
    ----------
    grid, timing:
        The topology and delay bounds used.
    trigger_times:
        Shape ``(L + 1, W)``; ``+inf`` for never-fired, ``nan`` for faulty nodes.
    correct_mask:
        ``True`` where the node is correct.
    layer0_times:
        The layer-0 firing times driving the run.
    engine:
        ``"solver"`` or ``"des"``.
    solution:
        The full :class:`~repro.core.pulse_solver.PulseSolution` when the
        analytic engine was used (``None`` for the discrete-event engine).
    fault_model:
        The fault model of the run (``None`` when fault-free).
    """

    grid: HexGrid
    timing: TimingConfig
    trigger_times: np.ndarray
    correct_mask: np.ndarray
    layer0_times: np.ndarray
    engine: str
    solution: Optional[PulseSolution] = None
    fault_model: Optional[FaultModel] = None

    def trigger_time(self, node: NodeId) -> float:
        """Firing time of one node."""
        layer, column = self.grid.validate_node(node)
        return float(self.trigger_times[layer, column])

    def all_correct_triggered(self) -> bool:
        """Whether every correct forwarding node fired."""
        times = self.trigger_times[1:, :]
        mask = self.correct_mask[1:, :]
        return bool(np.all(np.isfinite(times[mask])))


@dataclass
class MultiPulseResult:
    """Result of a multi-pulse discrete-event simulation run.

    Attributes
    ----------
    grid, timing, timeouts:
        Topology, delay bounds and algorithm timeouts used.
    source_schedule:
        Shape ``(num_pulses, W)``: the layer-0 pulse generation times.
    firing_times:
        Mapping node -> sorted list of all its firing times during the run
        (including spurious firings caused by arbitrary initial states).
    fault_model:
        The fault model of the run (``None`` when fault-free).
    """

    grid: HexGrid
    timing: TimingConfig
    timeouts: TimeoutConfig
    source_schedule: np.ndarray
    firing_times: Dict[NodeId, List[float]]
    fault_model: Optional[FaultModel] = None

    @property
    def num_pulses(self) -> int:
        """Number of pulses the layer-0 sources generated."""
        return int(self.source_schedule.shape[0])

    def firings_of(self, node: NodeId) -> List[float]:
        """All firing times of one node (empty for faulty nodes)."""
        return self.firing_times.get(self.grid.validate_node(node), [])

    def total_firings(self) -> int:
        """Total number of firings across all nodes."""
        return sum(len(times) for times in self.firing_times.values())


def simulate_single_pulse(
    grid: HexGrid,
    timing: TimingConfig,
    layer0_times: Sequence[float],
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    fault_model: Optional[FaultModel] = None,
    delays: Optional[DelayModel] = None,
    engine: str = "solver",
    timeouts: Optional[TimeoutConfig] = None,
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
) -> SinglePulseResult:
    """Propagate a single pulse wave through the grid.

    Parameters
    ----------
    grid, timing:
        Topology and delay bounds.
    layer0_times:
        Firing times of the ``W`` layer-0 sources (see
        :func:`repro.clocksource.scenarios.scenario_layer0_times`).
    seed, rng:
        Randomness control (per-link delays and, for the DES engine, timer
        draws).  Exactly one of them is typically given; with neither, a fresh
        unseeded generator is used.
    fault_model:
        Faults to inject.
    delays:
        Explicit link delay model; defaults to per-link uniform delays in
        ``[d-, d+]`` drawn from the run's RNG.
    engine:
        A registered engine name accepting explicit layer-0 times --
        ``"solver"`` (analytic, default) or ``"des"`` (discrete-event); see
        :func:`repro.engines.available_engines`.
    timeouts:
        Algorithm timeouts for the DES engine; defaults to the conservative
        Condition 2 values from :func:`default_timeouts`.
    timer_policy:
        Timer-draw policy for the DES engine.

    Returns
    -------
    SinglePulseResult

    .. deprecated::
        Prefer ``get_engine(engine).run(RunSpec(...))`` (or the engine's
        explicit ``single_pulse`` method when arrays are already in hand).
    """
    warnings.warn(
        "simulate_single_pulse is a legacy shim; build a repro.engines.RunSpec "
        "and call get_engine(name).run(spec) instead (see DESIGN.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    backend = get_engine(engine)
    if not backend.capabilities.supports_explicit_inputs or not hasattr(
        backend, "single_pulse"
    ):
        raise ValueError(
            f"engine {backend.name!r} does not accept explicit layer0_times; "
            f"build a repro.engines.RunSpec and call "
            f"get_engine({backend.name!r}).run(spec) instead"
        )
    generator = _make_rng(seed, rng)
    result = backend.single_pulse(
        grid,
        timing,
        layer0_times,
        rng=generator,
        fault_model=fault_model,
        delays=delays,
        timeouts=timeouts,
        timer_policy=timer_policy,
    )
    return SinglePulseResult(
        grid=grid,
        timing=timing,
        trigger_times=result.trigger_times,
        correct_mask=result.correct_mask,
        layer0_times=result.layer0_times,
        engine=result.engine,
        solution=result.solution,
        fault_model=result.fault_model,
    )


def simulate_multi_pulse(
    grid: HexGrid,
    timing: TimingConfig,
    timeouts: TimeoutConfig,
    source_schedule: np.ndarray,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    fault_model: Optional[FaultModel] = None,
    delays: Optional[DelayModel] = None,
    random_initial_states: bool = True,
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
    run_slack: float = 0.0,
    engine: str = "des",
) -> MultiPulseResult:
    """Run the discrete-event simulator over a schedule of layer-0 pulses.

    Parameters
    ----------
    source_schedule:
        Array of shape ``(num_pulses, W)`` of layer-0 pulse-generation times
        (see :func:`repro.clocksource.generator.generate_pulse_schedule`).
    random_initial_states:
        Start every correct forwarding node in a random internal state
        (Section 4.4's stabilization setting).  With ``False`` all nodes start
        in the clean ready state.
    run_slack:
        Extra simulated time after the last scheduled source pulse (on top of a
        conservative per-layer propagation allowance) before the run stops.
    delays:
        Delay model; defaults to fresh per-message uniform delays in
        ``[d-, d+]``.
    engine:
        A registered engine name supporting the multi-pulse workload
        (currently only ``"des"``).

    Returns
    -------
    MultiPulseResult

    .. deprecated::
        Prefer ``get_engine(engine).run(RunSpec(kind="multi_pulse", ...))``
        (or the engine's explicit ``multi_pulse`` method).
    """
    warnings.warn(
        "simulate_multi_pulse is a legacy shim; build a repro.engines.RunSpec "
        "and call get_engine(name).run(spec) instead (see DESIGN.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    backend = get_engine(engine)
    if (
        "multi_pulse" not in backend.capabilities.kinds
        or not backend.capabilities.supports_explicit_inputs
        or not hasattr(backend, "multi_pulse")
    ):
        raise ValueError(
            f"engine {backend.name!r} does not support explicit multi-pulse "
            f"schedules (supported kinds: {', '.join(backend.capabilities.kinds)})"
        )
    generator = _make_rng(seed, rng)
    result = backend.multi_pulse(
        grid,
        timing,
        timeouts,
        source_schedule,
        rng=generator,
        fault_model=fault_model,
        delays=delays,
        random_initial_states=random_initial_states,
        timer_policy=timer_policy,
        run_slack=run_slack,
    )
    return MultiPulseResult(
        grid=grid,
        timing=timing,
        timeouts=timeouts,
        source_schedule=result.source_schedule,
        firing_times=result.firing_times,
        fault_model=result.fault_model,
    )
