"""Link delay models.

The paper's testbench supports "both random delays (uniform within [d-, d+])
and deterministic delays" for every individual link.  The classes here cover
both, plus per-link tables for the hand-crafted worst-case constructions of
Figs. 5 and 17.

All models implement the :class:`repro.core.pulse_solver.LinkDelayProvider`
protocol (``delay(source, destination) -> float``) and additionally a
``sample(source, destination)`` method used by the discrete-event simulator for
each individual message:

* for :class:`UniformRandomDelays` the per-link delay is drawn lazily once and
  then cached, so the analytic solver and the discrete-event simulator observe
  *identical* delays for the same run -- this is what makes the engine
  cross-validation tests exact;
* :class:`FreshUniformDelays` instead draws a fresh delay for every message,
  modelling per-message jitter in long multi-pulse runs.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping

import numpy as np

from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid, LinkId, NodeId

__all__ = [
    "DelayModel",
    "ConstantDelays",
    "TableDelays",
    "UniformRandomDelays",
    "FreshUniformDelays",
]


class DelayModel(abc.ABC):
    """Base class of all link delay models."""

    @abc.abstractmethod
    def delay(self, source: NodeId, destination: NodeId) -> float:
        """The (stable) delay of the directed link ``source -> destination``."""

    def sample(self, source: NodeId, destination: NodeId) -> float:
        """The delay of one particular message on the link.

        Defaults to the stable per-link delay; models with per-message jitter
        override this.
        """
        return self.delay(source, destination)

    def validate_against(self, timing: TimingConfig, grid: HexGrid) -> bool:
        """Check that every link delay of ``grid`` lies within ``[d-, d+]``.

        Mainly used in tests and when loading hand-crafted delay tables.
        """
        for source, destination in grid.links():
            value = self.delay(source, destination)
            if not (timing.d_min - 1e-12 <= value <= timing.d_max + 1e-12):
                return False
        return True


class ConstantDelays(DelayModel):
    """Every link has the same fixed delay.

    Useful for analytic sanity checks (e.g. with delay ``d+`` everywhere a
    fault-free wave is perfectly synchronous within each layer).
    """

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"link delay must be positive, got {value}")
        self._value = float(value)

    @property
    def value(self) -> float:
        """The constant delay."""
        return self._value

    def delay(self, source: NodeId, destination: NodeId) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConstantDelays({self._value})"


class TableDelays(DelayModel):
    """Per-link delays from an explicit table, with a default for unlisted links.

    Used by the deterministic worst-case constructions (Figs. 5 and 17), where
    specific links are made fast (``d-``) or slow (``d+``).
    """

    def __init__(self, table: Mapping[LinkId, float], default: float) -> None:
        if default <= 0:
            raise ValueError(f"default link delay must be positive, got {default}")
        for link, value in table.items():
            if value <= 0:
                raise ValueError(f"link delay must be positive, got {value} for {link}")
        self._table: Dict[LinkId, float] = dict(table)
        self._default = float(default)

    @property
    def default(self) -> float:
        """The delay of links not listed in the table."""
        return self._default

    def set(self, source: NodeId, destination: NodeId, value: float) -> None:
        """Set the delay of a single link."""
        if value <= 0:
            raise ValueError(f"link delay must be positive, got {value}")
        self._table[(source, destination)] = float(value)

    def delay(self, source: NodeId, destination: NodeId) -> float:
        return self._table.get((source, destination), self._default)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TableDelays({len(self._table)} entries, default={self._default})"


class UniformRandomDelays(DelayModel):
    """Per-link delays drawn uniformly from ``[d-, d+]``, lazily, then cached.

    Every directed link gets exactly one delay per model instance; repeated
    queries return the same value.  This matches the paper's single-pulse
    experiments (each run draws one delay per link) and guarantees that the
    analytic solver and the discrete-event simulator agree exactly when given
    the same model instance.
    """

    def __init__(self, timing: TimingConfig, rng: np.random.Generator) -> None:
        self._timing = timing
        self._rng = rng
        self._cache: Dict[LinkId, float] = {}

    @property
    def timing(self) -> TimingConfig:
        """The delay bounds the model draws from."""
        return self._timing

    def delay(self, source: NodeId, destination: NodeId) -> float:
        key = (source, destination)
        value = self._cache.get(key)
        if value is None:
            value = float(self._rng.uniform(self._timing.d_min, self._timing.d_max))
            self._cache[key] = value
        return value

    def materialize(self, grid: HexGrid) -> Dict[LinkId, float]:
        """Draw (and cache) delays for *all* links of a grid and return them."""
        return {link: self.delay(*link) for link in grid.links()}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"UniformRandomDelays([{self._timing.d_min}, {self._timing.d_max}], "
            f"{len(self._cache)} cached)"
        )


class FreshUniformDelays(DelayModel):
    """Delays drawn uniformly from ``[d-, d+]`` independently for every message.

    ``delay`` returns a fresh draw as well (so the model is *not* stable); use
    :class:`UniformRandomDelays` when the analytic solver needs to see the same
    delays as the simulator.
    """

    def __init__(self, timing: TimingConfig, rng: np.random.Generator) -> None:
        self._timing = timing
        self._rng = rng

    @property
    def timing(self) -> TimingConfig:
        """The delay bounds the model draws from."""
        return self._timing

    def delay(self, source: NodeId, destination: NodeId) -> float:
        return float(self._rng.uniform(self._timing.d_min, self._timing.d_max))

    def sample(self, source: NodeId, destination: NodeId) -> float:
        return self.delay(source, destination)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FreshUniformDelays([{self._timing.d_min}, {self._timing.d_max}])"
