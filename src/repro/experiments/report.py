"""Plain-text rendering of experiment results.

The benchmark harness and the CLI print each table/figure as aligned text:
measured rows next to the paper's values where available, so "who wins, by
roughly what factor, where crossovers fall" can be checked at a glance without
any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_comparison", "format_kv"]

Number = Union[int, float]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    materialized = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(
    labels: Sequence[str],
    measured: Mapping[str, Number],
    paper: Mapping[str, Number],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a measured-vs-paper comparison for a set of named quantities."""
    rows = []
    for label in labels:
        measured_value = measured.get(label, float("nan"))
        paper_value = paper.get(label, float("nan"))
        ratio = (
            measured_value / paper_value
            if isinstance(measured_value, (int, float))
            and isinstance(paper_value, (int, float))
            and paper_value not in (0, 0.0)
            else float("nan")
        )
        rows.append([label, measured_value, paper_value, ratio])
    return format_table(
        ["quantity", "measured", "paper", "ratio"], rows, precision=precision, title=title
    )


def format_kv(values: Mapping[str, object], precision: int = 3, title: Optional[str] = None) -> str:
    """Render a flat key/value mapping."""
    rows = [[key, value] for key, value in values.items()]
    return format_table(["key", "value"], rows, precision=precision, title=title)
