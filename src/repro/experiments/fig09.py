"""Fig. 9: pulse-wave propagation with ramped layer-0 skews (scenario (iv)).

Same single-run setup as Fig. 8, but the layer-0 firing times ramp up and down
by ``d+`` per column.  The figure's point -- the grid smooths the large initial
skews out over roughly the first ``W - 2`` layers (Lemma 3) -- is captured by
comparing the intra-layer skews of the lowest layers against those above layer
``W - 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.skew import intra_layer_skews
from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig08 import WaveResult
from repro.experiments.report import format_kv
from repro.experiments.single_pulse import run_scenario_set

__all__ = ["Fig9Result", "run"]

#: Which scenario this figure uses.
SCENARIO = Scenario.RAMP


@dataclass
class Fig9Result(WaveResult):
    """The Fig. 9 wave with the smoothing-specific summary added."""

    def smoothing_summary(self) -> Dict[str, float]:
        """Maximum intra-layer skew below vs above the Lemma 3 horizon ``W - 2``."""
        width = self.config.width
        horizon = width - 2
        skews = intra_layer_skews(self.trigger_times)
        below = skews[1 : horizon + 1, :]
        above = skews[horizon + 1 :, :]
        return {
            "lemma3_horizon_layer": float(horizon),
            "max_skew_below_horizon": float(np.nanmax(below)) if below.size else float("nan"),
            "max_skew_above_horizon": float(np.nanmax(above)) if above.size else float("nan"),
            "initial_layer0_skew": float(
                np.nanmax(self.trigger_times[0, :]) - np.nanmin(self.trigger_times[0, :])
            ),
        }

    def render(self) -> str:
        """Text rendering of both summaries."""
        base = format_kv(self.summary(), title="Pulse wave, scenario (iv)")
        smoothing = format_kv(self.smoothing_summary(), title="Initial-skew smoothing (Lemma 3)")
        return f"{base}\n\n{smoothing}"


def run(
    config: Optional[ExperimentConfig] = None, seed_salt: int = 900
) -> Fig9Result:
    """Regenerate the Fig. 9 wave (one fault-free run, scenario (iv))."""
    config = config if config is not None else ExperimentConfig()
    run_set = run_scenario_set(config, SCENARIO, num_faults=0, runs=1, seed_salt=seed_salt)
    return Fig9Result(
        config=config, scenario=SCENARIO, trigger_times=run_set.trigger_times[0]
    )
