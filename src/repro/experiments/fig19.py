"""Fig. 19: stabilization times under scenario (iv).

Same sweep as Fig. 18 but with the ramped layer-0 scenario.  The qualitative
picture is identical (stabilization within one or two pulses unless the skew
bound is chosen aggressively small); absolute skews are larger, so the
timeouts derived from Condition 2 are larger as well (Table 3, last row).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig18 import (
    DEFAULT_CHOICES,
    DEFAULT_FAULT_COUNTS,
    StabilizationSweep,
    _sweep,
)
from repro.faults.models import FaultType

__all__ = ["run", "SCENARIO"]

#: Which scenario this figure uses.
SCENARIO = Scenario.RAMP


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    num_pulses: Optional[int] = None,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    choices: Sequence[int] = DEFAULT_CHOICES,
    fault_types: Sequence[FaultType] = (FaultType.BYZANTINE, FaultType.FAIL_SILENT),
    seed_salt: int = 1900,
) -> StabilizationSweep:
    """Regenerate the Fig. 19 sweep (scenario (iv))."""
    config = config if config is not None else ExperimentConfig.quick()
    return _sweep(
        config, SCENARIO, fault_counts, choices, fault_types, runs, num_pulses, seed_salt
    )
