"""Fig. 14: pulse propagation with five Byzantine nodes, scenario (iv).

A sample wave with five randomly placed Byzantine nodes (Condition 1 holding)
under ramped layer-0 skews.  As in Fig. 13, the point is that the individual
fault effects remain local and do not accumulate across the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.locality import skew_vs_distance
from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import Scenario, scenario_layer0_times
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.topology import NodeId
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.faults.models import FaultModel, NodeFault
from repro.faults.placement import place_faults
from repro.simulation.links import UniformRandomDelays

__all__ = ["Fig14Result", "run", "NUM_FAULTS", "SCENARIO"]

#: Number of Byzantine nodes in the figure.
NUM_FAULTS = 5

#: Which scenario this figure uses.
SCENARIO = Scenario.RAMP


@dataclass
class Fig14Result:
    """A single five-fault pulse wave plus fault-locality metrics."""

    config: ExperimentConfig
    solution: PulseSolution
    fault_model: FaultModel
    skew_profile: Dict[int, float]

    @property
    def fault_positions(self) -> List[NodeId]:
        """The faulty nodes of the run."""
        return self.fault_model.faulty_nodes()

    def summary(self) -> Dict[str, float]:
        """Skew statistics and locality profile of the wave."""
        stats = SkewStatistics.from_times(
            self.solution.trigger_times, self.fault_model.correctness_mask()
        )
        far_values = [
            value
            for distance, value in self.skew_profile.items()
            if distance >= 3 and np.isfinite(value)
        ]
        return {
            "num_faults": float(self.fault_model.num_faulty_nodes),
            "max_intra_skew": stats.intra_max,
            "max_inter_skew": stats.inter_max,
            "max_skew_at_distance_1": self.skew_profile.get(1, float("nan")),
            "max_skew_at_distance_ge_3": max(far_values) if far_values else float("nan"),
            "all_correct_triggered": float(self.solution.all_triggered()),
        }

    def render(self) -> str:
        """Text rendering."""
        return format_kv(self.summary(), title="Fig. 14: five Byzantine nodes, scenario (iv)")


def run(
    config: Optional[ExperimentConfig] = None, seed_salt: int = 1400
) -> Fig14Result:
    """Regenerate the Fig. 14 wave (5 random Byzantine nodes, scenario (iv))."""
    config = config if config is not None else ExperimentConfig()
    grid = config.make_grid()
    rng = config.spawn_rngs(1, salt=seed_salt)[0]

    positions = place_faults(grid, NUM_FAULTS, rng)
    fault_model = FaultModel(
        grid, [NodeFault.byzantine(grid, node, rng=rng) for node in positions]
    )
    layer0 = scenario_layer0_times(SCENARIO, grid.width, config.timing, rng=rng)
    delays = UniformRandomDelays(config.timing, rng)
    solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
    profile = skew_vs_distance(grid, solution.trigger_times, fault_model, max_distance=5)
    return Fig14Result(
        config=config, solution=solution, fault_model=fault_model, skew_profile=profile
    )
