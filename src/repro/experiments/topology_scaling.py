"""Topology-scaling experiment: skew vs grid size across topologies + H-tree.

The paper's title claim is that scaling the honeycomb beats scaling the clock
tree; this experiment makes the *shape* of the honeycomb part of the
comparison.  For a ladder of grid sizes it sweeps the registered hex
topologies (cylinder, torus, open-boundary patch and a damaged grid) on the
analytic solver and pairs every size with the ``clocktree`` engine as the
H-tree baseline on the same die:

* how does the neighbour skew grow with ``L x W`` per topology?
* what does the open rim of the patch cost relative to the wrap-around
  cylinder, and does the torus's missing boundary buy anything?
* how much neighbour skew does structural damage (punctured nodes, severed
  links) add?
* where does the H-tree's physically-adjacent sink skew overtake each of
  them?

Execution is campaign-backed: one cell per grid size sweeping the topology
axis on the hex engine, plus one cylinder-only cell per size for the
clock-tree baseline (the tree cannot represent a non-cylinder die, which the
``SweepSpec`` build-time validation enforces).  All cells share the
campaign's seed discipline, so results are reproducible and worker-count
independent (``workers=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.campaign.records import RunRecord, pooled_statistics
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table

__all__ = [
    "SCENARIO",
    "DEFAULT_TOPOLOGIES",
    "DEFAULT_SIZES",
    "QUICK_SIZES",
    "TopologyScalingRow",
    "TopologyScalingExperiment",
    "scaling_spec",
    "run",
]

#: Layer-0 scenario of all runs: (iii), the uniform-in-``[0, d+]`` spread
#: used by the paper's headline skew tables.
SCENARIO = Scenario.UNIFORM_DMAX

#: Topologies compared by default.  The degraded entry punctures 3 nodes and
#: severs 3 links (damage seed 1) of the cylinder.
DEFAULT_TOPOLOGIES: Tuple[str, ...] = (
    "cylinder",
    "torus",
    "patch",
    "degraded:links=3,nodes=3,seed=1",
)

#: The ``(layers, width)`` ladder of the scaling sweep.
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((10, 8), (20, 12), (40, 16))

#: Smaller ladder used by the quick configuration (CI smoke runs).
QUICK_SIZES: Tuple[Tuple[int, int], ...] = ((6, 6), (12, 8))

#: The hex execution engine of the sweep (the solver is the paper's
#: single-pulse semantics and by far the fastest backend).
HEX_ENGINE = "solver"

#: Per-size salt stride: each size gets two cells (hex sweep + tree
#: baseline) with disjoint salt ranges.
_SALT_STRIDE = 20


def scaling_spec(
    config: ExperimentConfig,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    runs: Optional[int] = None,
    seed_salt: int = 7000,
) -> CampaignSpec:
    """The campaign spec of the scaling sweep (two cells per grid size)."""
    run_count = runs if runs is not None else config.runs
    cells: List[SweepSpec] = []
    salt = seed_salt
    for layers, width in sizes:
        cells.append(
            SweepSpec(
                layers=layers,
                width=width,
                scenario=SCENARIO.value,
                engine=HEX_ENGINE,
                topology=tuple(topologies),
                runs=run_count,
                seed_salt=salt,
                label=f"hex-{layers}x{width}",
            )
        )
        salt += _SALT_STRIDE
        cells.append(
            SweepSpec(
                layers=layers,
                width=width,
                scenario=SCENARIO.value,
                engine="clocktree",
                runs=run_count,
                seed_salt=salt,
                label=f"tree-{layers}x{width}",
            )
        )
        salt += _SALT_STRIDE
    return CampaignSpec(
        name="topology-scaling", seed=config.seed, timing=config.timing, cells=tuple(cells)
    )


@dataclass
class TopologyScalingRow:
    """Pooled skew statistics of one (size, topology) point."""

    layers: int
    width: int
    topology: str
    num_nodes: int
    num_links: int
    runs: int
    intra_avg: float
    intra_q95: float
    intra_max: float
    inter_max: float

    def as_row(self) -> List[object]:
        return [
            f"{self.layers}x{self.width}",
            self.topology,
            self.num_nodes,
            self.num_links,
            self.runs,
            self.intra_avg,
            self.intra_q95,
            self.intra_max,
            self.inter_max,
        ]


@dataclass
class TopologyScalingExperiment:
    """Outcome of the topology-scaling sweep."""

    config: ExperimentConfig
    sizes: Tuple[Tuple[int, int], ...]
    topologies: Tuple[str, ...]
    rows: List[TopologyScalingRow] = field(default_factory=list)

    def row(self, layers: int, width: int, topology: str) -> TopologyScalingRow:
        """The row of one (size, topology) point (``"h-tree"`` for the baseline)."""
        for candidate in self.rows:
            if (candidate.layers, candidate.width, candidate.topology) == (
                layers,
                width,
                topology,
            ):
                return candidate
        raise KeyError(f"no row for {layers}x{width} {topology!r}")

    def render(self) -> str:
        """Text table: one row per (grid size, topology) plus tree baselines."""
        headers = [
            "grid", "topology", "nodes", "links", "runs",
            "intra_avg", "intra_q95", "intra_max", "inter_max",
        ]
        title = (
            "Topology scaling: pooled neighbour skew per grid shape "
            f"(scenario {SCENARIO.value}, engine {HEX_ENGINE}; 'h-tree' rows are "
            "the clock-tree baseline's physically adjacent sink skews)"
        )
        return format_table(headers, [row.as_row() for row in self.rows], title=title)


def _point_row(records: List[RunRecord]) -> TopologyScalingRow:
    params = records[0].params
    layers, width = int(params["layers"]), int(params["width"])
    stats = pooled_statistics(records).as_row()
    if params["engine"] == "clocktree":
        topology_label = "h-tree"
        # The tree's trigger matrix is its own sink array; report its size.
        side = len(records[0].trigger_matrix())
        num_nodes = side * side
        num_links = num_nodes - 1  # a tree
    else:
        topology_label = params.get("topology", "cylinder")
        grid = records[0].make_grid()
        num_nodes = getattr(grid, "num_present_nodes", grid.num_nodes)
        num_links = grid.num_links()
    return TopologyScalingRow(
        layers=layers,
        width=width,
        topology=topology_label,
        num_nodes=int(num_nodes),
        num_links=int(num_links),
        runs=len(records),
        intra_avg=stats["intra_avg"],
        intra_q95=stats["intra_q95"],
        intra_max=stats["intra_max"],
        inter_max=stats["inter_max"],
    )


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    workers: int = 1,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
) -> TopologyScalingExperiment:
    """Run the topology-scaling sweep.

    ``sizes`` defaults to :data:`DEFAULT_SIZES`, or :data:`QUICK_SIZES` when
    the configuration is a scaled-down quick one (CI smoke runs pick this up
    through ``hex-repro run topology-scaling --quick``).
    """
    if config is None:
        config = ExperimentConfig()
    if runs is not None:
        config = config.with_runs(runs)
    if sizes is None:
        sizes = QUICK_SIZES if config.layers < 50 else DEFAULT_SIZES
    sizes = tuple((int(layers), int(width)) for layers, width in sizes)
    topologies = tuple(topologies)

    spec = scaling_spec(config, topologies=topologies, sizes=sizes)
    result = CampaignRunner(spec, workers=workers).run()

    experiment = TopologyScalingExperiment(
        config=config, sizes=sizes, topologies=topologies
    )
    for records in result.grouped().values():
        experiment.rows.append(_point_row(records))
    # Rows per size: hex topologies in sweep order, then the tree baseline.
    experiment.rows.sort(
        key=lambda row: (
            sizes.index((row.layers, row.width)),
            row.topology == "h-tree",
        )
    )
    return experiment
