"""Fig. 18: stabilization times under scenario (iii).

For every fault count ``f``, fault type (Byzantine / fail-silent) and
skew-bound choice ``C in {0..3}``, 250 multi-pulse runs are started from
random initial states and the estimated stabilization time (minimal pulse from
which on the per-layer skew bounds hold) is recorded.  The observations to
reproduce:

* with conservative bounds (small ``C``) HEX stabilizes after the very first
  pulse in essentially every run;
* with aggressively small bounds (large ``C``, i.e. ``sigma(f, l) = d+``) the
  average stabilization time rises moderately and a minority of runs (< 25 %
  even in the most unfavourable setting) does not stabilize within the 10
  observed pulses;
* all of this is far below the worst-case bound of ``L + 1`` pulses from
  Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clocksource.scenarios import Scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.stability import StabilizationPoint, run_stabilization_point
from repro.faults.models import FaultType

__all__ = ["StabilizationSweep", "run", "SCENARIO", "DEFAULT_FAULT_COUNTS", "DEFAULT_CHOICES"]

#: Which scenario this figure uses.
SCENARIO = Scenario.UNIFORM_DMAX

#: Fault counts evaluated by default (the paper sweeps 0..5; the scaled-down
#: default keeps the end points and one intermediate value).
DEFAULT_FAULT_COUNTS: Tuple[int, ...] = (0, 2, 5)

#: Skew-bound choices evaluated by default (the paper sweeps 0..3).
DEFAULT_CHOICES: Tuple[int, ...] = (0, 3)


@dataclass
class StabilizationSweep:
    """Stabilization statistics per (f, C, fault type) cell.

    Shared by the Fig. 18 and Fig. 19 experiments.
    """

    config: ExperimentConfig
    scenario: Scenario
    points: Dict[Tuple[int, int, FaultType], StabilizationPoint]

    def point(self, num_faults: int, choice: int, fault_type: FaultType) -> StabilizationPoint:
        """One data point of the sweep."""
        return self.points[(num_faults, choice, fault_type)]

    def rows(self, fault_type: FaultType) -> List[List[object]]:
        """Rows (f, C, avg, avg+std, stabilized runs, runs) for one fault type."""
        rows: List[List[object]] = []
        for (num_faults, choice, kind), point in sorted(
            self.points.items(), key=lambda item: (item[0][0], item[0][1], item[0][2].value)
        ):
            if kind is not fault_type:
                continue
            row = point.as_row()
            rows.append(
                [
                    num_faults,
                    choice,
                    row["avg"],
                    row["avg_plus_std"],
                    int(row["stabilized_runs"]),
                    int(row["runs"]),
                ]
            )
        return rows

    def render(self) -> str:
        """Text rendering of both fault types."""
        headers = ["f", "C", "avg", "avg+std", "stabilized", "runs"]
        parts = []
        for fault_type in (FaultType.BYZANTINE, FaultType.FAIL_SILENT):
            rows = self.rows(fault_type)
            if not rows:
                continue
            parts.append(
                format_table(
                    headers,
                    rows,
                    title=(
                        f"Stabilization, scenario {scenario_label(self.scenario)}, "
                        f"{fault_type.value} faults"
                    ),
                )
            )
        return "\n\n".join(parts)


def _sweep(
    config: ExperimentConfig,
    scenario: Scenario,
    fault_counts: Sequence[int],
    choices: Sequence[int],
    fault_types: Sequence[FaultType],
    runs: Optional[int],
    num_pulses: Optional[int],
    seed_salt: int,
) -> StabilizationSweep:
    points: Dict[Tuple[int, int, FaultType], StabilizationPoint] = {}
    salt = seed_salt
    for fault_type in fault_types:
        for num_faults in fault_counts:
            for choice in choices:
                salt += 1
                points[(num_faults, choice, fault_type)] = run_stabilization_point(
                    config,
                    scenario,
                    num_faults=num_faults,
                    fault_type=fault_type,
                    skew_choice=choice,
                    runs=runs,
                    num_pulses=num_pulses,
                    seed_salt=salt,
                )
    return StabilizationSweep(config=config, scenario=scenario, points=points)


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    num_pulses: Optional[int] = None,
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    choices: Sequence[int] = DEFAULT_CHOICES,
    fault_types: Sequence[FaultType] = (FaultType.BYZANTINE, FaultType.FAIL_SILENT),
    seed_salt: int = 1800,
) -> StabilizationSweep:
    """Regenerate the Fig. 18 sweep (scenario (iii)).

    The default grid/run counts are scaled down because every data point is a
    full discrete-event simulation of ``num_pulses`` pulses; pass
    ``ExperimentConfig.paper()`` and the full ``fault_counts=(0,...,5)``,
    ``choices=(0,...,3)`` for the paper-scale suite.
    """
    config = config if config is not None else ExperimentConfig.quick()
    return _sweep(
        config, SCENARIO, fault_counts, choices, fault_types, runs, num_pulses, seed_salt
    )
