"""Table 3: stable skews and timeout values used in the stabilization experiments.

The paper derives the timeouts for the stabilization experiments from the
scenario-dependent maximum skews observed with up to five faults, plus a slack
of ``d+``, plugged into (a slightly modified version of) Condition 2 with
``theta = 1.05``.  This module reproduces the table twice:

* with the paper's stable-skew inputs (column ``sigma`` of Table 3) -- the
  timeout columns then follow from Condition 2 exactly (up to the small
  trigger-signal-duration slack of footnote 10, exposed as
  ``signal_duration``);
* with stable skews measured by *this* reproduction (the observed maxima of a
  Table 2-style run set with ``f = 5`` faults plus ``d+``), showing how the
  whole parameter chain is regenerated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clocksource.scenarios import SCENARIOS, Scenario, scenario_label
from repro.core.parameters import PAPER_SIGNAL_DURATION_NS, TimeoutConfig, condition2_timeouts
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType

__all__ = ["PAPER_TABLE3", "Table3Result", "run", "NUM_FAULTS_FOR_TABLE3"]

#: Number of faults the Table 3 parameters are provisioned for (f in [6] means
#: up to five faulty nodes).
NUM_FAULTS_FOR_TABLE3 = 5

#: The values reported in Table 3 of the paper (ns).
PAPER_TABLE3: Dict[Scenario, Dict[str, float]] = {
    Scenario.ZERO: {
        "sigma": 28.48, "T_link_min": 31.98, "T_link_max": 33.58,
        "T_sleep_min": 83.56, "T_sleep_max": 87.74, "S": 264.08,
    },
    Scenario.UNIFORM_DMIN: {
        "sigma": 31.16, "T_link_min": 34.66, "T_link_max": 36.39,
        "T_sleep_min": 89.18, "T_sleep_max": 93.64, "S": 275.60,
    },
    Scenario.UNIFORM_DMAX: {
        "sigma": 31.75, "T_link_min": 35.25, "T_link_max": 37.01,
        "T_sleep_min": 90.42, "T_sleep_max": 94.94, "S": 278.14,
    },
    Scenario.RAMP: {
        "sigma": 40.64, "T_link_min": 44.14, "T_link_max": 46.34,
        "T_sleep_min": 109.08, "T_sleep_max": 114.53, "S": 316.40,
    },
}

_COLUMNS = ("sigma", "T_link_min", "T_link_max", "T_sleep_min", "T_sleep_max", "S")


@dataclass
class Table3Result:
    """Measured Table 3 rows.

    Attributes
    ----------
    from_paper_sigma:
        Timeouts obtained by feeding the paper's ``sigma`` column through
        Condition 2 (validates the parameter formulas).
    from_measured_sigma:
        Timeouts obtained from this reproduction's own observed maximum skews
        (validates the end-to-end parameter derivation).
    measured_sigma:
        The observed maximum skews (plus ``d+`` slack) per scenario.
    """

    config: ExperimentConfig
    from_paper_sigma: Dict[Scenario, TimeoutConfig]
    from_measured_sigma: Dict[Scenario, TimeoutConfig]
    measured_sigma: Dict[Scenario, float]

    def rows(self, which: str = "paper_sigma") -> List[List[object]]:
        """Rows of one of the two derivations (``"paper_sigma"`` / ``"measured_sigma"``)."""
        source = self.from_paper_sigma if which == "paper_sigma" else self.from_measured_sigma
        rows: List[List[object]] = []
        for scenario in SCENARIOS:
            row = source[scenario].as_row()
            rows.append([scenario_label(scenario)] + [row[column] for column in _COLUMNS])
        return rows

    def paper_rows(self) -> List[List[object]]:
        """The paper's rows in the same format."""
        return [
            [scenario_label(scenario)] + [PAPER_TABLE3[scenario][column] for column in _COLUMNS]
            for scenario in SCENARIOS
        ]

    def render(self) -> str:
        """Text rendering of both derivations next to the paper's values."""
        headers = ["scenario"] + list(_COLUMNS)
        parts = [
            format_table(
                headers,
                self.rows("paper_sigma"),
                title="Table 3 (Condition 2 applied to the paper's sigma)",
            ),
            format_table(
                headers,
                self.rows("measured_sigma"),
                title="Table 3 (Condition 2 applied to this reproduction's measured sigma)",
            ),
            format_table(headers, self.paper_rows(), title="Table 3 (paper)"),
        ]
        return "\n\n".join(parts)


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    signal_duration: float = PAPER_SIGNAL_DURATION_NS,
) -> Table3Result:
    """Regenerate Table 3.

    Parameters
    ----------
    signal_duration:
        The footnote-10 slack added to ``T^-_link``; defaults to the value
        reverse-engineered from the paper's table so the ``paper_sigma``
        derivation matches it exactly.  Pass 0 for the plain Condition 2
        values.
    """
    config = config if config is not None else ExperimentConfig()
    timing = config.timing

    from_paper_sigma: Dict[Scenario, TimeoutConfig] = {}
    from_measured_sigma: Dict[Scenario, TimeoutConfig] = {}
    measured_sigma: Dict[Scenario, float] = {}
    for index, scenario in enumerate(SCENARIOS):
        paper_sigma = PAPER_TABLE3[scenario]["sigma"]
        from_paper_sigma[scenario] = condition2_timeouts(
            timing,
            stable_skew=paper_sigma,
            layers=config.layers,
            num_faults=NUM_FAULTS_FOR_TABLE3,
            signal_duration=signal_duration,
        )

        run_set = run_scenario_set(
            config,
            scenario,
            num_faults=NUM_FAULTS_FOR_TABLE3,
            fault_type=FaultType.BYZANTINE,
            runs=runs,
            seed_salt=300 + index,
        )
        stats = run_set.statistics()
        observed_max = max(stats.intra_max, stats.inter_max)
        sigma = observed_max + timing.d_max
        measured_sigma[scenario] = sigma
        from_measured_sigma[scenario] = condition2_timeouts(
            timing,
            stable_skew=sigma,
            layers=config.layers,
            num_faults=NUM_FAULTS_FOR_TABLE3,
            signal_duration=signal_duration,
        )

    return Table3Result(
        config=config,
        from_paper_sigma=from_paper_sigma,
        from_measured_sigma=from_measured_sigma,
        measured_sigma=measured_sigma,
    )
