"""Recovery time vs fault-burst size: re-stabilization after transient faults.

The self-stabilization experiments of Section 4.4 start from arbitrary states
but keep the fault set frozen; this experiment exercises the claim the paper
actually makes -- recovery from *transient* faults -- using the dynamic
adversary layer:

1. a multi-pulse run starts from random initial states and stabilizes;
2. at the ``inject_pulse``-th pulse window a burst of ``f`` Byzantine nodes
   appears (placed under Condition 1 by the
   :class:`~repro.adversary.schedule.FaultSchedule`);
3. at the ``heal_pulse``-th window the burst heals -- the transient fault
   ends and *every* node is correct again;
4. post-processing measures, per run, how many pulses after the first fully
   fault-free window the per-layer skews need to return within the
   *fault-free* bounds ``sigma(0, l)`` (the ``C = 0`` choice of
   :func:`repro.core.bounds.stable_skew_choice`) -- and stay there.

The headline observation mirrors Figs. 18/19: HEX re-stabilizes within a
couple of pulses of the last heal event, far below the worst-case ``L + 1``
pulses of Theorem 2, even though the during-burst windows may violate the
fault-free bounds arbitrarily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.schedule import FaultSchedule
from repro.analysis.stabilization import assign_pulses, pulse_skew_ok
from repro.clocksource.scenarios import Scenario
from repro.core.bounds import stable_skew_choice
from repro.engines import RunSpec, get_engine
from repro.engines.base import RunResult
from repro.engines.des import scenario_stabilization_timeouts
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table

__all__ = [
    "SCENARIO",
    "DEFAULT_BURST_SIZES",
    "RecoveryPoint",
    "RecoveryExperiment",
    "burst_recovery_spec",
    "pulse_ok_flags",
    "recovery_pulses",
    "run",
]

#: Layer-0 scenario of the recovery runs.  Scenario (i) makes the pulse
#: windows deterministic (pulse ``k`` is generated exactly at ``k S``), so the
#: burst and heal times land mid-window by construction.
SCENARIO = Scenario.ZERO

#: Burst sizes evaluated by default.
DEFAULT_BURST_SIZES: Tuple[int, ...] = (1, 2, 4)


def burst_recovery_spec(
    config: ExperimentConfig,
    num_faults: int,
    num_pulses: int,
    inject_pulse: int,
    heal_pulse: int,
    run_index: int,
    seed_salt: int,
) -> RunSpec:
    """The :class:`RunSpec` of one burst-recovery run.

    Timeouts are the conservative Condition 2 values for ``num_faults``
    concurrent faults (the system must ride the burst out, not just the
    fault-free phases); with scenario (i) the resulting pulse separation ``S``
    puts pulse ``k`` exactly at ``k S``, so the burst injects at
    ``(inject_pulse + 1/2) S`` and heals at ``(heal_pulse + 1/2) S``.
    """
    if not 0 <= inject_pulse < heal_pulse < num_pulses:
        raise ValueError(
            f"need 0 <= inject_pulse < heal_pulse < num_pulses, got "
            f"{inject_pulse}, {heal_pulse}, {num_pulses}"
        )
    timeouts = scenario_stabilization_timeouts(
        SCENARIO, config.width, config.layers, num_faults, config.timing
    )
    separation = timeouts.pulse_separation
    schedule = (
        FaultSchedule.burst(
            time=(inject_pulse + 0.5) * separation,
            count=num_faults,
            duration=(heal_pulse - inject_pulse) * separation,
            label=f"recovery-burst-{num_faults}",
        )
        if num_faults > 0
        else None
    )
    return RunSpec(
        kind="multi_pulse",
        layers=config.layers,
        width=config.width,
        d_min=config.timing.d_min,
        d_max=config.timing.d_max,
        theta=config.timing.theta,
        scenario=SCENARIO.value,
        num_pulses=num_pulses,
        timeouts=timeouts,
        fault_schedule=schedule,
        entropy=config.seed + seed_salt,
        run_index=run_index,
    )


def pulse_ok_flags(result: RunResult, num_faults_bound: int = 0) -> np.ndarray:
    """Per-pulse boolean flags: skews within the ``sigma(f, l)`` bounds (C = 0).

    ``num_faults_bound = 0`` checks against the *fault-free* bounds, which is
    the recovery criterion (after the heal event there are no faults left to
    excuse any skew).
    """
    assignment = assign_pulses(result)
    grid = result.grid
    timing = result.timing
    correct_mask = (
        result.fault_model.correctness_mask()
        if result.fault_model is not None
        else np.ones(grid.shape, dtype=bool)
    )
    correct_mask &= grid.pulse_reachable_mask()

    extra_skew = grid.condition2_extra_hops() * timing.d_max

    def intra_bound(layer: int) -> float:
        return extra_skew + stable_skew_choice(
            0, timing, grid.layers, layer, num_faults_bound, layer0_spread=0.0
        )

    def inter_bound(layer: int) -> float:
        return intra_bound(layer) + timing.d_max

    flags = np.zeros(assignment.num_pulses, dtype=bool)
    for pulse in range(assignment.num_pulses):
        flags[pulse] = pulse_skew_ok(
            grid,
            assignment.times[pulse],
            assignment.counts[pulse],
            correct_mask,
            intra_bound,
            inter_bound,
        )
    return flags


def recovery_pulses(flags: np.ndarray, heal_pulse: int) -> float:
    """Pulses needed after the first fully fault-free window to re-stabilize.

    Returns ``0.0`` when the first window entirely after the heal event (and
    every later one) already satisfies the fault-free bounds, ``k`` when the
    bounds hold from ``k`` windows later, and ``NaN`` when the run never
    re-stabilizes within the observed pulses.
    """
    first_clean = heal_pulse + 1
    for pulse in range(first_clean, len(flags)):
        if bool(np.all(flags[pulse:])):
            return float(pulse - first_clean)
    return float("nan")


@dataclass
class RecoveryPoint:
    """Recovery statistics of one burst size.

    Attributes
    ----------
    num_faults:
        The burst size ``f``.
    recovery:
        Per-run recovery times in pulses (``NaN`` = did not re-stabilize).
    violated_during:
        Per-run flags: some during-burst window violated the fault-free
        bounds (i.e. the burst was actually disruptive).
    """

    num_faults: int
    recovery: np.ndarray
    violated_during: np.ndarray

    def as_row(self) -> Dict[str, float]:
        """Summary row of this point."""
        finite = self.recovery[np.isfinite(self.recovery)]
        return {
            "f": float(self.num_faults),
            "runs": float(self.recovery.size),
            "recovered_runs": float(finite.size),
            "recovery_avg": float(finite.mean()) if finite.size else float("nan"),
            "recovery_max": float(finite.max()) if finite.size else float("nan"),
            "disrupted_runs": float(np.count_nonzero(self.violated_during)),
        }


@dataclass
class RecoveryExperiment:
    """Outcome of the burst-recovery experiment."""

    config: ExperimentConfig
    num_pulses: int
    inject_pulse: int
    heal_pulse: int
    points: List[RecoveryPoint] = field(default_factory=list)

    def point(self, num_faults: int) -> RecoveryPoint:
        """The point of one burst size."""
        for candidate in self.points:
            if candidate.num_faults == num_faults:
                return candidate
        raise KeyError(f"no recovery point for f={num_faults}")

    def render(self) -> str:
        """Text rendering (one row per burst size)."""
        headers = ["f", "runs", "recovered", "rec_avg", "rec_max", "disrupted"]
        rows = []
        for point in self.points:
            row = point.as_row()
            rows.append(
                [
                    int(row["f"]),
                    int(row["runs"]),
                    int(row["recovered_runs"]),
                    row["recovery_avg"],
                    row["recovery_max"],
                    int(row["disrupted_runs"]),
                ]
            )
        title = (
            f"Recovery from transient fault bursts "
            f"({self.config.layers}x{self.config.width} grid, "
            f"inject at pulse {self.inject_pulse}, heal at pulse {self.heal_pulse}, "
            f"{self.num_pulses} pulses; recovery in pulses after the first clean window)"
        )
        return format_table(headers, rows, title=title)


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    burst_sizes: Sequence[int] = DEFAULT_BURST_SIZES,
    num_pulses: Optional[int] = None,
    inject_pulse: int = 2,
    heal_pulse: int = 4,
    seed_salt: int = 900,
) -> RecoveryExperiment:
    """Run the recovery-time-vs-fault-burst experiment.

    Each burst size gets its own seed salt (``seed_salt + f``) and
    ``config.runs`` Monte Carlo repetitions; run ``r`` of a point draws its
    generator from ``SeedSequence(seed + salt, spawn_key=(r,))`` -- the
    campaign seed discipline, so results are reproducible and
    process-placement independent.
    """
    if config is None:
        config = ExperimentConfig()
    if runs is not None:
        config = config.with_runs(runs)
    total_pulses = num_pulses if num_pulses is not None else max(config.num_pulses, 10)
    engine = get_engine("des")

    points: List[RecoveryPoint] = []
    for num_faults in burst_sizes:
        if num_faults < 1:
            raise ValueError(f"burst sizes must be >= 1, got {num_faults}")
        recovery = np.full(config.runs, np.nan, dtype=float)
        violated = np.zeros(config.runs, dtype=bool)
        for run_index in range(config.runs):
            spec = burst_recovery_spec(
                config,
                num_faults,
                total_pulses,
                inject_pulse,
                heal_pulse,
                run_index,
                seed_salt + num_faults,
            )
            result = engine.run(spec)
            flags = pulse_ok_flags(result)
            recovery[run_index] = recovery_pulses(flags, heal_pulse)
            violated[run_index] = not bool(
                np.all(flags[inject_pulse : heal_pulse + 1])
            )
        points.append(
            RecoveryPoint(num_faults=num_faults, recovery=recovery, violated_during=violated)
        )
    return RecoveryExperiment(
        config=config,
        num_pulses=total_pulses,
        inject_pulse=inject_pulse,
        heal_pulse=heal_pulse,
        points=points,
    )
