"""Canonical experiment configuration.

All of Section 4 uses a grid with ``L = 50`` layers and ``W = 20`` columns,
end-to-end delays uniform in ``[7.161, 8.197]`` ns (``epsilon = 1.036`` ns),
drift ``theta = 1.05`` and 250 simulation runs per data point.  Running the
full 250-run suites takes a while in pure Python, so the default configuration
keeps the paper's grid and delays but uses a reduced run count; pass
``ExperimentConfig.paper()`` (or ``--runs 250`` on the CLI) for the full thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid

__all__ = ["ExperimentConfig", "DEFAULT_RUNS", "PAPER_RUNS"]

#: Default number of runs per data point for the scaled-down harness.
DEFAULT_RUNS = 25

#: Number of runs per data point used in the paper.
PAPER_RUNS = 250


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by all experiments.

    Attributes
    ----------
    layers, width:
        Grid dimensions ``L`` and ``W``.
    timing:
        Delay bounds and drift factor.
    runs:
        Number of simulation runs per data point.
    num_pulses:
        Number of pulses per run in the stabilization experiments.
    seed:
        Base seed; every run derives an independent child seed from it.
    """

    layers: int = 50
    width: int = 20
    timing: TimingConfig = field(default_factory=TimingConfig.paper_defaults)
    runs: int = DEFAULT_RUNS
    num_pulses: int = 10
    seed: int = 2013  # SPAA'13

    def __post_init__(self) -> None:
        if self.layers < 1 or self.width < 3:
            raise ValueError("need layers >= 1 and width >= 3")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if self.num_pulses < 1:
            raise ValueError("num_pulses must be >= 1")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, seed: int = 2013) -> "ExperimentConfig":
        """The full paper-scale configuration (50x20 grid, 250 runs)."""
        return cls(runs=PAPER_RUNS, seed=seed)

    @classmethod
    def quick(cls, seed: int = 2013) -> "ExperimentConfig":
        """A small configuration for tests and smoke runs (20x10 grid, 5 runs)."""
        return cls(layers=20, width=10, runs=5, num_pulses=6, seed=seed)

    def with_runs(self, runs: int) -> "ExperimentConfig":
        """A copy with a different run count."""
        return replace(self, runs=runs)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """A copy with a different base seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def make_grid(self) -> HexGrid:
        """The HEX grid of this configuration."""
        return HexGrid(layers=self.layers, width=self.width)

    def spawn_rngs(self, count: int, salt: int = 0) -> list[np.random.Generator]:
        """Independent child generators, one per run.

        Uses :class:`numpy.random.SeedSequence` spawning so run sets are
        reproducible and could be distributed across processes without
        overlapping streams (guide idiom for embarrassingly parallel sweeps).
        """
        seed_sequence = np.random.SeedSequence(entropy=self.seed + salt)
        return [np.random.default_rng(child) for child in seed_sequence.spawn(count)]
