"""Fig. 16: skew statistics vs the number of Byzantine faults, scenario (iv).

Same sweep as Fig. 15 but with the ramped layer-0 scenario.  Additional
observations to reproduce:

* a single fault already causes close to the worst observed skew -- fault
  effects do not accumulate with ``f``;
* the maximal intra-layer skews typically exceed the inter-layer skews,
  because the ramped wave propagates diagonally and a fault on the ramp can
  tear two same-layer neighbours far apart (cf. Fig. 17).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig15 import FAULT_COUNTS, FaultSweepResult, _sweep
from repro.faults.models import FaultType

__all__ = ["run", "SCENARIO"]

#: Which scenario this figure uses.
SCENARIO = Scenario.RAMP


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    fault_counts: Sequence[int] = FAULT_COUNTS,
    fault_type: FaultType = FaultType.BYZANTINE,
    seed_salt: int = 1600,
    workers: int = 1,
) -> FaultSweepResult:
    """Regenerate the Fig. 16 sweep (scenario (iv), Byzantine faults)."""
    config = config if config is not None else ExperimentConfig()
    return _sweep(config, SCENARIO, fault_type, fault_counts, runs, seed_salt, workers=workers)
