"""Fig. 11: cumulated skew histograms for scenario (iv).

Same pooling as Fig. 10 but for the ramped layer-0 scenario.  The shape to
reproduce: both histograms develop a visible cluster near the end of the tail
(intra-layer skews close to ``d+``, inter-layer skews close to ``2 d+``) caused
by the large initial skews in the lower layers.
"""

from __future__ import annotations

from typing import Optional

from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.fig10 import HistogramResult, _build

__all__ = ["run", "SCENARIO"]

#: Which scenario this figure uses.
SCENARIO = Scenario.RAMP


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    seed_salt: int = 1100,
) -> HistogramResult:
    """Regenerate the Fig. 11 histograms (scenario (iv), fault-free)."""
    config = config if config is not None else ExperimentConfig()
    return _build(config, SCENARIO, runs, seed_salt)
