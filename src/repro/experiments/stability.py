"""Shared machinery for the stabilization experiments (Table 3, Figs. 18-19).

Each data point of Figs. 18/19 is defined by a scenario, a number of faults
``f``, a fault type (Byzantine or fail-silent) and a skew-bound choice
``C in {0..3}``.  For every run:

1. the faults are placed uniformly at random under Condition 1;
2. the algorithm timeouts are taken from Condition 2 with a stable-skew value
   that is compatible with the observed skews (the paper derives it from the
   single-pulse experiments plus a ``d+`` slack; we use the conservative
   Lemma 5 bound, which is always sufficient and keeps the harness
   self-contained);
3. the layer-0 sources generate ``num_pulses`` pulses separated by ``S``;
4. every correct node starts in a random internal state;
5. the run's stabilization time is estimated from the recorded firings against
   the per-layer bound ``sigma(f, l)`` selected by ``C``.

The summary per data point is the average stabilization time, its standard
deviation and the number of runs that stabilized within the observed pulses --
exactly the three series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.campaign.records import stabilization_times
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import Scenario, parse_scenario
from repro.core.parameters import TimeoutConfig, condition2_timeouts
from repro.experiments.config import ExperimentConfig
from repro.faults.models import FaultType

__all__ = [
    "StabilizationPoint",
    "stabilization_point_spec",
    "run_stabilization_point",
    "scenario_timeouts",
]


def scenario_timeouts(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int,
    stable_skew: Optional[float] = None,
    signal_duration: float = 0.0,
) -> TimeoutConfig:
    """Condition 2 timeouts for a stabilization experiment.

    The stable-skew value defaults to the conservative Lemma 5 bound with the
    scenario's maximum layer-0 spread (``0``, ``d-``, ``d+`` or ``W/2 * d+``
    for scenarios (i)-(iv)); pass an explicit ``stable_skew`` (e.g. the
    observed maximum skew plus ``d+``, as the paper does) to reproduce the
    Table 3 values instead.
    """
    scenario_value = parse_scenario(scenario)
    timing = config.timing
    if stable_skew is None:
        spread = {
            Scenario.ZERO: 0.0,
            Scenario.UNIFORM_DMIN: timing.d_min,
            Scenario.UNIFORM_DMAX: timing.d_max,
            Scenario.RAMP: (config.width // 2) * timing.d_max,
        }[scenario_value]
        stable_skew = spread + timing.epsilon * config.layers + num_faults * timing.d_max
    return condition2_timeouts(
        timing,
        stable_skew=stable_skew,
        layers=config.layers,
        num_faults=num_faults,
        signal_duration=signal_duration,
    )


@dataclass
class StabilizationPoint:
    """The outcome of one (scenario, f, fault type, C) data point.

    Attributes
    ----------
    scenario, num_faults, fault_type, skew_choice:
        The data-point coordinates.
    stabilization_times:
        Per-run estimates (1-based pulse numbers); ``nan`` for runs that did
        not stabilize within the observed pulses.
    num_pulses:
        Number of pulses observed per run.
    """

    scenario: Scenario
    num_faults: int
    fault_type: FaultType
    skew_choice: int
    stabilization_times: np.ndarray
    num_pulses: int

    @property
    def num_runs(self) -> int:
        """Number of runs at this data point."""
        return int(self.stabilization_times.size)

    @property
    def num_stabilized(self) -> int:
        """Runs that stabilized within the observed pulses."""
        return int(np.sum(np.isfinite(self.stabilization_times)))

    @property
    def average(self) -> float:
        """Average stabilization time over the stabilized runs."""
        finite = self.stabilization_times[np.isfinite(self.stabilization_times)]
        return float(finite.mean()) if finite.size else float("nan")

    @property
    def std(self) -> float:
        """Standard deviation of the stabilization time over the stabilized runs."""
        finite = self.stabilization_times[np.isfinite(self.stabilization_times)]
        return float(finite.std()) if finite.size else float("nan")

    def as_row(self) -> Dict[str, float]:
        """Summary row (the three series plotted in Figs. 18/19)."""
        return {
            "f": float(self.num_faults),
            "C": float(self.skew_choice),
            "avg": self.average,
            "avg_plus_std": self.average + self.std if np.isfinite(self.average) else float("nan"),
            "stabilized_runs": float(self.num_stabilized),
            "runs": float(self.num_runs),
        }


def stabilization_point_spec(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int,
    fault_type: FaultType = FaultType.BYZANTINE,
    skew_choice: int = 0,
    runs: Optional[int] = None,
    num_pulses: Optional[int] = None,
    seed_salt: int = 0,
    timeouts: Optional[TimeoutConfig] = None,
) -> CampaignSpec:
    """The one-cell campaign spec equivalent of one stabilization data point.

    Without an explicit ``timeouts`` override the campaign executor derives
    the conservative Lemma 5 values per task -- the same formula as
    :func:`scenario_timeouts` -- which keeps the spec self-contained.
    """
    scenario_value = parse_scenario(scenario)
    cell = SweepSpec(
        layers=config.layers,
        width=config.width,
        scenario=scenario_value.value,
        num_faults=num_faults,
        fault_type=fault_type.value,
        runs=runs if runs is not None else config.runs,
        seed_salt=seed_salt,
        kind="multi_pulse",
        num_pulses=num_pulses if num_pulses is not None else config.num_pulses,
        skew_choice=skew_choice,
        timeouts=timeouts,
    )
    return CampaignSpec(
        name=f"stabilization-{scenario_value.value}",
        seed=config.seed,
        timing=config.timing,
        cells=(cell,),
    )


def run_stabilization_point(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int,
    fault_type: FaultType = FaultType.BYZANTINE,
    skew_choice: int = 0,
    runs: Optional[int] = None,
    num_pulses: Optional[int] = None,
    seed_salt: int = 0,
    timeouts: Optional[TimeoutConfig] = None,
    workers: int = 1,
) -> StabilizationPoint:
    """Run all simulations of one stabilization data point.

    Parameters mirror the paper's experiment matrix; see the module docstring.
    Execution runs on the campaign subsystem (fault placement, pulse schedule
    and simulation draws consume each run's child stream in the historical
    order), so results are identical for any ``workers`` count.
    """
    scenario_value = parse_scenario(scenario)
    if skew_choice not in (0, 1, 2, 3):
        raise ValueError(f"skew_choice must be in 0..3, got {skew_choice}")
    if fault_type not in (FaultType.BYZANTINE, FaultType.FAIL_SILENT):
        raise ValueError("stabilization experiments use Byzantine or fail-silent faults")

    pulses = num_pulses if num_pulses is not None else config.num_pulses
    if timeouts is None:
        timeouts = scenario_timeouts(config, scenario_value, num_faults)
    spec = stabilization_point_spec(
        config,
        scenario_value,
        num_faults,
        fault_type=fault_type,
        skew_choice=skew_choice,
        runs=runs,
        num_pulses=pulses,
        seed_salt=seed_salt,
        timeouts=timeouts,
    )
    campaign = CampaignRunner(spec, workers=workers).run()
    return StabilizationPoint(
        scenario=scenario_value,
        num_faults=num_faults,
        fault_type=fault_type,
        skew_choice=skew_choice,
        stabilization_times=stabilization_times(campaign.records),
        num_pulses=pulses,
    )
