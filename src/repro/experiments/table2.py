"""Table 2: intra- and inter-layer skews with a single Byzantine node.

Identical setup to Table 1 except that every run contains one Byzantine node
placed uniformly at random (under Condition 1), whose behaviour on each
outgoing link is independently constant-0 or constant-1.  The faulty node's own
firing times are excluded from the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import SCENARIOS, Scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType

__all__ = ["PAPER_TABLE2", "Table2Result", "run"]

#: The values reported in Table 2 of the paper (ns), f = 1 Byzantine node.
PAPER_TABLE2: Dict[Scenario, Dict[str, float]] = {
    Scenario.ZERO: {
        "intra_avg": 0.539, "intra_q95": 1.335, "intra_max": 10.385,
        "inter_min": 5.575, "inter_q5": 7.352, "inter_avg": 8.007,
        "inter_q95": 8.760, "inter_max": 17.548,
    },
    Scenario.UNIFORM_DMIN: {
        "intra_avg": 0.607, "intra_q95": 1.717, "intra_max": 10.123,
        "inter_min": 4.205, "inter_q5": 7.343, "inter_avg": 8.058,
        "inter_q95": 9.003, "inter_max": 20.027,
    },
    Scenario.UNIFORM_DMAX: {
        "intra_avg": 0.618, "intra_q95": 1.787, "intra_max": 10.363,
        "inter_min": 3.515, "inter_q5": 7.343, "inter_avg": 8.067,
        "inter_q95": 9.033, "inter_max": 20.717,
    },
    Scenario.RAMP: {
        "intra_avg": 1.973, "intra_q95": 7.660, "intra_max": 34.590,
        "inter_min": -19.695, "inter_q5": 7.260, "inter_avg": 8.690,
        "inter_q95": 14.866, "inter_max": 24.305,
    },
}

_COLUMNS = (
    "intra_avg", "intra_q95", "intra_max",
    "inter_min", "inter_q5", "inter_avg", "inter_q95", "inter_max",
)


@dataclass
class Table2Result:
    """Measured Table 2 rows."""

    config: ExperimentConfig
    statistics: Dict[Scenario, SkewStatistics]

    def rows(self) -> List[List[object]]:
        """Measured rows in the paper's column order."""
        rows: List[List[object]] = []
        for scenario in SCENARIOS:
            stats = self.statistics[scenario].as_row()
            rows.append([scenario_label(scenario)] + [stats[column] for column in _COLUMNS])
        return rows

    def paper_rows(self) -> List[List[object]]:
        """The paper's rows in the same format."""
        return [
            [scenario_label(scenario)] + [PAPER_TABLE2[scenario][column] for column in _COLUMNS]
            for scenario in SCENARIOS
        ]

    def render(self) -> str:
        """Text rendering: measured rows followed by the paper's rows."""
        headers = ["scenario"] + list(_COLUMNS)
        measured = format_table(headers, self.rows(), title="Table 2 (measured, f = 1 Byzantine)")
        paper = format_table(headers, self.paper_rows(), title="Table 2 (paper)")
        return f"{measured}\n\n{paper}"


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
) -> Table2Result:
    """Regenerate Table 2 (one random Byzantine node per run)."""
    config = config if config is not None else ExperimentConfig()
    statistics: Dict[Scenario, SkewStatistics] = {}
    for index, scenario in enumerate(SCENARIOS):
        run_set = run_scenario_set(
            config,
            scenario,
            num_faults=1,
            fault_type=FaultType.BYZANTINE,
            runs=runs,
            seed_salt=200 + index,
        )
        statistics[scenario] = run_set.statistics()
    return Table2Result(config=config, statistics=statistics)
