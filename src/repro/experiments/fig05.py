"""Fig. 5: a deterministic worst-case pulse wave.

The construction makes everything in and left of column 8 fast (delays ``d-``),
everything right of it slow (delays ``d+`` plus ramped layer-0 times), and
kills column 16 so the two halves cannot short-circuit around the cylinder.
The measured quantity is the skew between the focus columns (8 and 9) at the
top layer, which should approach the Lemma 4 bound for the construction's
effective skew potential -- far above the average skews of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.bounds import lemma4_intra_layer_bound, skew_potential
from repro.core.parameters import TimingConfig
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.worstcase import WorstCaseConstruction, fig5_worst_case_wave
from repro.experiments.report import format_kv

__all__ = ["Fig5Result", "run"]


@dataclass
class Fig5Result:
    """Outcome of the Fig. 5 worst-case construction.

    Attributes
    ----------
    construction:
        The grid / delays / faults used.
    solution:
        The resulting pulse wave.
    focus_skew:
        Measured skew between the two focus columns at the top layer.
    average_skew:
        Average intra-layer skew of the same wave away from the split, for
        contrast.
    lemma4_bound:
        The Lemma 4 bound evaluated with the construction's layer-0 skew
        potential (the value the construction tries to approach).
    """

    construction: WorstCaseConstruction
    solution: PulseSolution
    focus_skew: float
    average_skew: float
    lemma4_bound: float

    def summary(self) -> Dict[str, float]:
        """Key numbers of the experiment."""
        return {
            "focus_skew": self.focus_skew,
            "lemma4_bound": self.lemma4_bound,
            "bound_utilisation": self.focus_skew / self.lemma4_bound,
            "average_skew": self.average_skew,
        }

    def render(self) -> str:
        """Text rendering."""
        return format_kv(self.summary(), title="Fig. 5 worst-case wave")


def run(timing: Optional[TimingConfig] = None, layers: int = 16) -> Fig5Result:
    """Build and evaluate the Fig. 5 worst-case construction."""
    timing = timing if timing is not None else TimingConfig.paper_defaults()
    construction = fig5_worst_case_wave(timing, layers=layers)
    solution = solve_single_pulse(
        construction.grid,
        construction.layer0_times,
        construction.delays,
        fault_model=construction.fault_model,
    )
    left, right = construction.focus_columns  # type: ignore[misc]
    top = construction.grid.layers
    focus_skew = abs(
        solution.trigger_time((top, left)) - solution.trigger_time((top, right))
    )

    # Average intra-layer skew over the fast half (columns 0..left-1).
    times = solution.trigger_times
    diffs = []
    for column in range(0, left - 1):
        column_skew = np.abs(times[1:, column] - times[1:, column + 1])
        diffs.append(column_skew[np.isfinite(column_skew)])
    average_skew = float(np.concatenate(diffs).mean()) if diffs else float("nan")

    delta0 = skew_potential(construction.layer0_times, timing.d_min)
    bound = lemma4_intra_layer_bound(
        timing, layer=top, base_layer=0, base_skew_potential=delta0
    )
    return Fig5Result(
        construction=construction,
        solution=solution,
        focus_skew=focus_skew,
        average_skew=average_skew,
        lemma4_bound=bound,
    )
