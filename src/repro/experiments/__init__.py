"""Per-table / per-figure experiment harness (Section 4).

Every table and figure of the paper's evaluation has a module here exposing a
``run(...)`` function that regenerates the corresponding rows/series, plus a
``PAPER_*`` constant with the values reported in the paper for comparison.
The shared machinery lives in

* :mod:`repro.experiments.config` -- canonical parameters (50x20 grid, the
  paper's delay bounds, 250 runs) and scaled-down defaults;
* :mod:`repro.experiments.single_pulse` -- seeded single-pulse run sets with
  optional fault injection (Tables 1-2, Figs. 8-16);
* :mod:`repro.experiments.stability` -- multi-pulse stabilization run sets
  (Table 3, Figs. 18-19);
* :mod:`repro.experiments.report` -- plain-text rendering of rows and
  paper-vs-measured comparisons.

:data:`EXPERIMENTS` maps experiment identifiers (``"table1"``, ``"fig15"``,
...) to their modules; the command-line interface iterates over it.
"""

from __future__ import annotations

import importlib
from typing import Dict

__all__ = ["EXPERIMENTS", "load_experiment"]

#: Identifier -> module path of every reproducible experiment.
EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2",
    "table3": "repro.experiments.table3",
    "fig05": "repro.experiments.fig05",
    "fig08": "repro.experiments.fig08",
    "fig09": "repro.experiments.fig09",
    "fig10": "repro.experiments.fig10",
    "fig11": "repro.experiments.fig11",
    "fig12": "repro.experiments.fig12",
    "fig13": "repro.experiments.fig13",
    "fig14": "repro.experiments.fig14",
    "fig15": "repro.experiments.fig15",
    "fig16": "repro.experiments.fig16",
    "fig17": "repro.experiments.fig17",
    "fig18": "repro.experiments.fig18",
    "fig19": "repro.experiments.fig19",
    "theorem1": "repro.experiments.theorem1",
    "clocktree": "repro.experiments.clocktree_comparison",
    "ablation-faults": "repro.experiments.ablation_faulttype",
    "recovery": "repro.experiments.recovery",
    "topology-scaling": "repro.experiments.topology_scaling",
}


def load_experiment(name: str):
    """Import and return the module of an experiment by identifier."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return importlib.import_module(EXPERIMENTS[key])
