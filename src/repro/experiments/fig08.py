"""Fig. 8: pulse-wave propagation with zero layer-0 skew (scenario (i)).

A single fault-free run on the 50x20 grid with all layer-0 sources firing at
time 0.  The regenerated data is the full trigger-time surface ``t_{l,i}``; the
properties the figure illustrates -- the wave propagates evenly, every layer is
triggered within a narrow band, the skew does not build up with the layer --
are summarised numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.skew import intra_layer_skews
from repro.analysis.traces import wave_rows
from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.experiments.single_pulse import run_scenario_set

__all__ = ["WaveResult", "run"]

#: Which scenario this figure uses.
SCENARIO = Scenario.ZERO


@dataclass
class WaveResult:
    """A single pulse wave plus its summary statistics.

    Shared by the Fig. 8 and Fig. 9 experiments (they differ only in the
    layer-0 scenario).
    """

    config: ExperimentConfig
    scenario: Scenario
    trigger_times: np.ndarray

    def rows(self, truncate_layers: int = 30) -> List[Dict[str, float]]:
        """The plottable (layer, column, time) rows of the wave surface."""
        return wave_rows(self.trigger_times, truncate_layers=truncate_layers)

    def summary(self) -> Dict[str, float]:
        """Per-wave summary: propagation span and skew behaviour along the wave."""
        times = self.trigger_times
        skews = intra_layer_skews(times)
        layer0_spread = float(np.nanmax(times[0, :]) - np.nanmin(times[0, :]))
        top = times.shape[0] - 1
        top_spread = float(np.nanmax(times[top, :]) - np.nanmin(times[top, :]))
        return {
            "layer0_spread": layer0_spread,
            "top_layer_spread": top_spread,
            "max_intra_layer_skew": float(np.nanmax(skews[1:, :])),
            "avg_intra_layer_skew": float(np.nanmean(skews[1:, :])),
            "total_propagation_time": float(np.nanmax(times) - np.nanmin(times)),
            "per_layer_time": float((np.nanmax(times) - np.nanmin(times[0, :])) / top),
        }

    def render(self) -> str:
        """Text rendering of the summary."""
        return format_kv(self.summary(), title=f"Pulse wave, scenario {self.scenario.roman}")


def run(
    config: Optional[ExperimentConfig] = None, seed_salt: int = 800
) -> WaveResult:
    """Regenerate the Fig. 8 wave (one fault-free run, scenario (i))."""
    config = config if config is not None else ExperimentConfig()
    run_set = run_scenario_set(config, SCENARIO, num_faults=0, runs=1, seed_salt=seed_salt)
    return WaveResult(
        config=config, scenario=SCENARIO, trigger_times=run_set.trigger_times[0]
    )
