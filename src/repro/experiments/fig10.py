"""Fig. 10: cumulated skew histograms for scenario (i).

Histograms of the intra- and inter-layer skews pooled over all nodes and runs
of the fault-free scenario (i) suite.  The qualitative observations to
reproduce: a sharp concentration (the bulk of the intra-layer skews well below
``epsilon``), an exponential-looking tail, and -- unlike scenario (iv) -- no
secondary cluster near the end of the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.histograms import Histogram, skew_histograms, tail_fraction
from repro.analysis.skew import collect_inter_values, collect_intra_values
from repro.clocksource.scenarios import Scenario
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.experiments.single_pulse import run_scenario_set

__all__ = ["HistogramResult", "run", "SCENARIO"]

#: Which scenario this figure uses.
SCENARIO = Scenario.ZERO


@dataclass
class HistogramResult:
    """Histograms plus the tail metrics used for shape comparison.

    Shared by the Fig. 10 and Fig. 11 experiments.
    """

    config: ExperimentConfig
    scenario: Scenario
    intra: Histogram
    inter: Histogram
    intra_values: np.ndarray
    inter_values: np.ndarray

    def summary(self) -> Dict[str, float]:
        """Concentration / tail metrics of both histograms."""
        d_max = self.config.timing.d_max
        epsilon = self.config.timing.epsilon
        return {
            "intra_samples": float(self.intra_values.size),
            "intra_median": float(np.median(self.intra_values)),
            "intra_frac_above_eps": tail_fraction(self.intra_values, epsilon),
            "intra_frac_above_dmax": tail_fraction(self.intra_values, d_max),
            "inter_median": float(np.median(self.inter_values)),
            "inter_frac_above_dmax_plus_eps": tail_fraction(self.inter_values, d_max + epsilon),
            "inter_frac_above_2dmax": tail_fraction(self.inter_values, 2 * d_max),
        }

    def render(self) -> str:
        """Text rendering of the summary."""
        return format_kv(
            self.summary(), title=f"Skew histograms, scenario {self.scenario.roman}"
        )


def _build(config: ExperimentConfig, scenario: Scenario, runs: Optional[int], seed_salt: int) -> HistogramResult:
    run_set = run_scenario_set(config, scenario, num_faults=0, runs=runs, seed_salt=seed_salt)
    histograms = skew_histograms(run_set.trigger_times)
    intra_values = collect_intra_values(run_set.trigger_times)
    inter_values = collect_inter_values(run_set.trigger_times)
    return HistogramResult(
        config=config,
        scenario=scenario,
        intra=histograms["intra"],
        inter=histograms["inter"],
        intra_values=intra_values,
        inter_values=inter_values,
    )


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    seed_salt: int = 1000,
) -> HistogramResult:
    """Regenerate the Fig. 10 histograms (scenario (i), fault-free)."""
    config = config if config is not None else ExperimentConfig()
    return _build(config, SCENARIO, runs, seed_salt)
