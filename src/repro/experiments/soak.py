"""Long-horizon soak runs: streaming telemetry under continuous fault churn.

The stabilization experiments of Section 4.4 run a few hundred pulses and
keep every firing in memory for post-processing.  A *soak* run drives
millions of pulses through the discrete-event engine under continuously
regenerated inject/heal fault schedules and keeps **nothing** per pulse:
every observation folds into bounded-memory accumulators
(:class:`repro.stream.StreamSummary` -- Welford moments plus a
Greenwald-Khanna quantile sketch), so peak memory is a function of the
epoch size, never of the total pulse count.

Structure
---------
The run is split into *epochs* of ``pulses_per_epoch`` pulses.  Each epoch
builds a fresh network, a fresh zero-scenario pulse schedule and -- when
``faults > 0`` -- a fresh :meth:`~repro.adversary.schedule.FaultSchedule.burst`
(injected at 25% of the epoch span, healed at ``heal_fraction``), then runs
:meth:`~repro.engines.des.DesEngine.multi_pulse` with a custom observer and
``collect_firings=False``.  Epoch ``k`` draws from the child generator
``SeedSequence(entropy=seed, spawn_key=(k,))``, so any epoch is reproducible
in isolation and a checkpoint-resumed run replays the exact same epochs an
uninterrupted run would have.

Per-pulse observations (streamed, never stored):

* **skew** -- the pulse's maximum intra-layer firing spread: firings of
  currently-faulty nodes and of layer-0 sources are excluded, each firing is
  binned to the window ``floor(t / S)`` (equivalently the
  :func:`repro.analysis.stabilization.assign_pulses` searchsorted rule --
  zero-scenario window ``k`` starts exactly at ``k * S``), and the window's
  skew is the max over layers with >= 2 firings of ``max - min``.
  :func:`repro.analysis.streaming.pulse_skew_series` is the post-hoc mirror
  used by the equivalence tests.
* **recovery time** -- after the epoch's burst fully heals, the time from
  the heal to the start of the first window in which every forwarding layer
  fired ``width`` times with skew at most
  ``(width // 2) * (epsilon * layers) + d_max`` (a deliberately generous
  stable-skew heuristic: the Lemma 5 fault-free bound ``epsilon * L`` plus
  lateral slack; it classifies "recovered", it is not a verified bound).

Checkpoints
-----------
Every ``checkpoint_every`` epochs (and at the end) the full accumulator
state is serialized into a ``hex-repro/soak/v1`` JSON artifact at
``<store>/soak-<spec-key>.json`` (atomic rename, canonical JSON).  The
sketch buffers are flushed at *every* epoch boundary -- not just at
checkpoints -- so serialized state is a deterministic function of the
observation sequence and a resumed run finishes bit-identical (modulo the
wall-clock telemetry fields excluded from :meth:`SoakCheckpoint.state_key`)
to one that never stopped.

Wall-clock use in this module is telemetry only (pulses/sec throughput,
RSS, elapsed seconds); no simulated result depends on it.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time as _time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Union

import numpy as np

from repro import obs
from repro.adversary.runtime import HealNode, InjectFault
from repro.adversary.schedule import FaultSchedule
from repro.checks.schemas import schema
from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.clocksource.scenarios import Scenario
from repro.core.parameters import TimingConfig
from repro.core.topology import HexGrid, NodeId
from repro.engines.base import canonical_json, content_key
from repro.engines.des import DesEngine, scenario_stabilization_timeouts
from repro.faults.models import FaultType
from repro.stream import StreamSummary

__all__ = [
    "SoakCheckpoint",
    "SoakObserver",
    "SoakResult",
    "SoakSpec",
    "checkpoint_path",
    "load_checkpoint",
    "run_soak",
]

#: Telemetry fields of a checkpoint payload that depend on the host / wall
#: clock; :meth:`SoakCheckpoint.state_key` excludes them so resume-identity
#: can be asserted bit-for-bit.
TELEMETRY_FIELDS = ("pulses_per_s", "rss_bytes", "wall_time_s")

#: The epoch-span fractions of the per-epoch burst: inject at 25%, heal at
#: ``heal_fraction`` (which must stay strictly inside ``(0.25, 0.95)`` so
#: the fault window and the post-heal recovery window both fit the epoch).
INJECT_FRACTION = 0.25
_HEAL_FRACTION_MAX = 0.95


@dataclass(frozen=True)
class SoakSpec:
    """A frozen, JSON-round-trippable description of one soak run.

    ``fault_type`` and ``initial_states`` are omitted from the canonical
    JSON at their defaults, so default specs keep stable content keys when
    new optional fields appear (the K001/K002 contract).
    """

    layers: int = 10
    width: int = 6
    num_pulses: int = 1_000_000
    pulses_per_epoch: int = 512
    faults: int = 2
    fault_type: str = FaultType.BYZANTINE.value
    heal_fraction: float = 0.6
    epsilon: float = 0.005
    exact_cap: int = 512
    seed: int = 2013
    initial_states: str = "random"

    def __post_init__(self) -> None:
        if self.layers < 1 or self.width < 3:
            raise ValueError("need layers >= 1 and width >= 3")
        if self.num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {self.num_pulses}")
        if self.pulses_per_epoch < 1:
            raise ValueError(
                f"pulses_per_epoch must be >= 1, got {self.pulses_per_epoch}"
            )
        if self.faults < 0:
            raise ValueError(f"faults must be non-negative, got {self.faults}")
        FaultType(self.fault_type)  # raises on unknown values
        if not INJECT_FRACTION < self.heal_fraction < _HEAL_FRACTION_MAX:
            raise ValueError(
                f"heal_fraction must lie in ({INJECT_FRACTION}, {_HEAL_FRACTION_MAX}), "
                f"got {self.heal_fraction}"
            )
        if not 0.0 < self.epsilon < 0.5:
            raise ValueError(f"epsilon must lie in (0, 0.5), got {self.epsilon}")
        if self.exact_cap < 0:
            raise ValueError(f"exact_cap must be non-negative, got {self.exact_cap}")
        if self.initial_states not in ("clean", "random", "adversarial"):
            raise ValueError(
                f"unknown initial_states {self.initial_states!r}; expected "
                "'clean', 'random' or 'adversarial'"
            )

    @property
    def num_epochs(self) -> int:
        """Number of epochs (the last one may be short)."""
        return -(-self.num_pulses // self.pulses_per_epoch)

    def epoch_pulses(self, epoch: int) -> int:
        """Number of pulses of epoch ``epoch`` (0-based)."""
        remaining = self.num_pulses - epoch * self.pulses_per_epoch
        return max(0, min(self.pulses_per_epoch, remaining))

    def to_json_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (defaults of optional fields omitted)."""
        payload = dataclasses.asdict(self)
        if self.fault_type == FaultType.BYZANTINE.value:
            del payload["fault_type"]
        if self.initial_states == "random":
            del payload["initial_states"]
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "SoakSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        return cls(**payload)

    def key(self, length: int = 32) -> str:
        """Content key of the canonical JSON form."""
        return content_key(self.to_json_dict(), length=length)


class SoakObserver:
    """Streaming per-epoch network observer: O(1) state per epoch.

    Binds to nothing: it maintains its own currently-faulty node set from
    the adversary actions it witnesses (valid because soak runs carry no
    static fault model -- every fault arrives through the schedule), and it
    exploits the event queue's time ordering: firing times are
    non-decreasing, so the pulse-window index is non-decreasing and only
    one window's min/max/count accumulators are ever live.
    """

    def __init__(
        self,
        grid: HexGrid,
        separation: float,
        num_windows: int,
        skew_threshold: float,
        skew: StreamSummary,
        recovery: StreamSummary,
    ) -> None:
        self._layers = grid.layers
        self._width = grid.width
        self._separation = float(separation)
        self._num_windows = int(num_windows)
        self._skew_threshold = float(skew_threshold)
        self.skew = skew
        self.recovery = recovery
        self.faults_injected = 0
        self.faults_healed = 0
        self.recoveries = 0
        self._faulty: Set[NodeId] = set()
        self._pending_heal: Optional[float] = None
        self._window: Optional[int] = None
        size = grid.layers + 1
        self._mins = np.full(size, np.inf, dtype=float)
        self._maxs = np.full(size, -np.inf, dtype=float)
        self._counts = np.zeros(size, dtype=np.int64)

    # -- the duck-typed HexNetwork observer hooks ----------------------
    def on_event(self, time: float, event: object) -> None:
        """Per-event hook: unused (per-pulse stats come from firings)."""

    def on_firing(self, node: NodeId, time: float) -> None:
        """Fold one firing into the live window's accumulators."""
        layer = node[0]
        if layer == 0 or node in self._faulty:
            return
        window = min(int(time // self._separation), self._num_windows - 1)
        if self._window is None:
            self._window = window
        elif window > self._window:
            self._finalize_window()
            self._window = window
        self._counts[layer] += 1
        if time < self._mins[layer]:
            self._mins[layer] = time
        if time > self._maxs[layer]:
            self._maxs[layer] = time

    def on_adversary(self, time: float, action: object) -> None:
        """Track the live faulty set and the heal instant."""
        if isinstance(action, InjectFault):
            self._faulty.add(action.fault.node)
            self.faults_injected += 1
            self._pending_heal = None
        elif isinstance(action, HealNode):
            self._faulty.discard(action.node)
            self.faults_healed += 1
            if not self._faulty:
                self._pending_heal = time

    # -- epoch lifecycle ------------------------------------------------
    def finish_epoch(self) -> None:
        """Finalize the last live window (call once, after the run)."""
        if self._window is not None:
            self._finalize_window()
            self._window = None

    def _finalize_window(self) -> None:
        eligible = self._counts >= 2
        eligible[0] = False
        if eligible.any():
            spread = float(np.max(self._maxs[eligible] - self._mins[eligible]))
            self.skew.add(spread)
        else:
            spread = math.inf
        if self._pending_heal is not None:
            window_start = self._window * self._separation
            forwarding = self._counts[1:]
            if (
                window_start >= self._pending_heal
                and bool(np.all(forwarding == self._width))
                and spread <= self._skew_threshold
            ):
                self.recovery.add(window_start - self._pending_heal)
                self.recoveries += 1
                self._pending_heal = None
        self._mins.fill(np.inf)
        self._maxs.fill(-np.inf)
        self._counts.fill(0)


@dataclass
class SoakCheckpoint:
    """One serialized snapshot of a soak run (``hex-repro/soak/v1``)."""

    spec: SoakSpec
    epochs_completed: int
    pulses_completed: int
    faults_injected: int
    faults_healed: int
    recoveries: int
    skew: StreamSummary
    recovery_s: StreamSummary
    pulses_per_s: float
    rss_bytes: int
    wall_time_s: float

    def to_json_dict(self) -> Dict[str, Any]:
        """The full artifact payload, schema string included."""
        return {
            "schema": schema("soak"),
            "spec": self.spec.to_json_dict(),
            "epochs_completed": self.epochs_completed,
            "pulses_completed": self.pulses_completed,
            "faults_injected": self.faults_injected,
            "faults_healed": self.faults_healed,
            "recoveries": self.recoveries,
            "skew": self.skew.to_json_dict(),
            "recovery_s": self.recovery_s.to_json_dict(),
            "pulses_per_s": self.pulses_per_s,
            "rss_bytes": self.rss_bytes,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "SoakCheckpoint":
        """Rebuild a checkpoint from artifact JSON (schema-checked)."""
        found = payload.get("schema")
        if found != schema("soak"):
            raise ValueError(
                f"not a {schema('soak')} artifact (schema: {found!r})"
            )
        return cls(
            spec=SoakSpec.from_json_dict(payload["spec"]),
            epochs_completed=int(payload["epochs_completed"]),
            pulses_completed=int(payload["pulses_completed"]),
            faults_injected=int(payload["faults_injected"]),
            faults_healed=int(payload["faults_healed"]),
            recoveries=int(payload["recoveries"]),
            skew=StreamSummary.from_json_dict(payload["skew"]),
            recovery_s=StreamSummary.from_json_dict(payload["recovery_s"]),
            pulses_per_s=float(payload["pulses_per_s"]),
            rss_bytes=int(payload["rss_bytes"]),
            wall_time_s=float(payload["wall_time_s"]),
        )

    def key(self, length: int = 32) -> str:
        """Content key of the full payload (telemetry included)."""
        return content_key(self.to_json_dict(), length=length)

    def state_key(self, length: int = 32) -> str:
        """Content key of the *deterministic* state only.

        Excludes :data:`TELEMETRY_FIELDS`; a checkpoint-resumed run and an
        uninterrupted run produce equal state keys at the same epoch.
        """
        payload = self.to_json_dict()
        for field in TELEMETRY_FIELDS:
            del payload[field]
        return content_key(payload, length=length)


@dataclass
class SoakResult:
    """Summary of a completed (or resumed-and-completed) soak run."""

    spec: SoakSpec
    epochs: int
    pulses: int
    faults_injected: int
    faults_healed: int
    recoveries: int
    skew: StreamSummary
    recovery_s: StreamSummary
    pulses_per_s: float
    rss_bytes: int
    wall_time_s: float
    checkpoints_written: int = 0
    checkpoint_path: Optional[Path] = None
    resumed_epochs: int = 0

    def final_checkpoint(self) -> SoakCheckpoint:
        """The run's end state as a checkpoint object."""
        return SoakCheckpoint(
            spec=self.spec,
            epochs_completed=self.epochs,
            pulses_completed=self.pulses,
            faults_injected=self.faults_injected,
            faults_healed=self.faults_healed,
            recoveries=self.recoveries,
            skew=self.skew,
            recovery_s=self.recovery_s,
            pulses_per_s=self.pulses_per_s,
            rss_bytes=self.rss_bytes,
            wall_time_s=self.wall_time_s,
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON summary (checkpoint payload plus run bookkeeping)."""
        payload = self.final_checkpoint().to_json_dict()
        payload["checkpoints_written"] = self.checkpoints_written
        payload["checkpoint_path"] = (
            str(self.checkpoint_path) if self.checkpoint_path is not None else None
        )
        payload["resumed_epochs"] = self.resumed_epochs
        return payload

    def render(self) -> List[str]:
        """Human-readable report lines (the CLI's non-JSON output)."""
        spec = self.spec
        skew = self.skew.stats()
        lines = [
            f"soak {spec.layers}x{spec.width} grid, seed {spec.seed}: "
            f"{self.pulses} pulses over {self.epochs} epochs"
            + (f" ({self.resumed_epochs} resumed)" if self.resumed_epochs else ""),
            f"  throughput: {self.pulses_per_s:.0f} pulses/s, "
            f"wall {self.wall_time_s:.1f} s, rss {self.rss_bytes / 1e6:.1f} MB",
            f"  faults: {self.faults_injected} injected, {self.faults_healed} healed, "
            f"{self.recoveries} recoveries",
            f"  skew ({int(skew['count'])} pulses): mean {skew['mean']:.3f}  "
            f"p50 {skew['p50']:.3f}  p95 {skew['p95']:.3f}  max {skew['max']:.3f}",
        ]
        if self.recovery_s.count:
            rec = self.recovery_s.stats()
            lines.append(
                f"  recovery ({int(rec['count'])} heals): mean {rec['mean']:.1f}  "
                f"p50 {rec['p50']:.1f}  p95 {rec['p95']:.1f}  max {rec['max']:.1f}"
            )
        if self.checkpoint_path is not None:
            lines.append(
                f"  checkpoint: {self.checkpoint_path} "
                f"({self.checkpoints_written} written)"
            )
        return lines


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------
def checkpoint_path(store: Union[str, Path], spec: SoakSpec) -> Path:
    """The content-addressed checkpoint file of ``spec`` under ``store``."""
    return Path(store) / f"soak-{spec.key(16)}.json"


def save_checkpoint(store: Union[str, Path], checkpoint: SoakCheckpoint) -> Path:
    """Atomically write ``checkpoint`` to its content-addressed path."""
    path = checkpoint_path(store, checkpoint.spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(".json.tmp")
    temp.write_text(canonical_json(checkpoint.to_json_dict()) + "\n", encoding="utf-8")
    os.replace(temp, path)
    return path


def load_checkpoint(path: Union[str, Path]) -> SoakCheckpoint:
    """Load one ``hex-repro/soak/v1`` artifact."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return SoakCheckpoint.from_json_dict(payload)


def _rss_bytes() -> int:
    """Resident set size, best effort (0 when the platform offers nothing)."""
    return obs.resources.rss_bytes()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def _epoch_rng(spec: SoakSpec, epoch: int) -> np.random.Generator:
    """Epoch ``epoch``'s generator: ``SeedSequence(seed, spawn_key=(epoch,))``."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=spec.seed, spawn_key=(epoch,))
    )


def _epoch_schedule(
    spec: SoakSpec, span: float
) -> Optional[FaultSchedule]:
    """The per-epoch burst schedule (``None`` for fault-free soaks)."""
    if spec.faults == 0:
        return None
    inject_time = INJECT_FRACTION * span
    heal_time = spec.heal_fraction * span
    return FaultSchedule.burst(
        time=inject_time,
        count=spec.faults,
        fault_type=spec.fault_type,
        duration=heal_time - inject_time,
        label="soak-churn",
    )


def run_soak(
    spec: SoakSpec,
    *,
    store: Optional[Union[str, Path]] = None,
    resume: bool = False,
    checkpoint_every: Optional[int] = None,
    progress: Optional[Callable[[Dict[str, float]], None]] = None,
    engine: Optional[DesEngine] = None,
) -> SoakResult:
    """Run (or resume) a soak: bounded-memory streaming over epochs.

    Parameters
    ----------
    spec:
        The run description; ``(spec, seed)`` determines all simulated
        state deterministically.
    store:
        Directory for checkpoint artifacts; ``None`` disables checkpoints.
    resume:
        Load ``checkpoint_path(store, spec)`` when it exists and continue
        from its epoch instead of starting over.
    checkpoint_every:
        Snapshot period in epochs; defaults to a quarter of the run
        (``max(1, num_epochs // 4)``), which guarantees at least one
        mid-run checkpoint for runs of four or more epochs.
    progress:
        Optional per-epoch callback receiving a flat stats dict (the same
        numbers the :mod:`repro.obs` gauges carry).
    engine:
        Injected :class:`~repro.engines.des.DesEngine` (tests); a fresh
        one by default.
    """
    engine = engine if engine is not None else DesEngine()
    num_epochs = spec.num_epochs
    if checkpoint_every is None:
        checkpoint_every = max(1, num_epochs // 4)
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")

    skew = StreamSummary(epsilon=spec.epsilon, exact_cap=spec.exact_cap)
    recovery = StreamSummary(epsilon=spec.epsilon, exact_cap=spec.exact_cap)
    start_epoch = 0
    pulses_completed = 0
    faults_injected = 0
    faults_healed = 0
    recoveries = 0
    prior_wall = 0.0

    path: Optional[Path] = None
    if store is not None:
        path = checkpoint_path(store, spec)
        if resume and path.exists():
            loaded = load_checkpoint(path)
            if loaded.spec != spec:
                raise ValueError(
                    f"checkpoint {path} was written by a different spec "
                    f"(key {loaded.spec.key(16)} != {spec.key(16)})"
                )
            skew = loaded.skew
            recovery = loaded.recovery_s
            start_epoch = loaded.epochs_completed
            pulses_completed = loaded.pulses_completed
            faults_injected = loaded.faults_injected
            faults_healed = loaded.faults_healed
            recoveries = loaded.recoveries
            prior_wall = loaded.wall_time_s

    grid = HexGrid(layers=spec.layers, width=spec.width)
    timing = TimingConfig.paper_defaults()
    timeouts = scenario_stabilization_timeouts(
        Scenario.ZERO,
        spec.width,
        spec.layers,
        spec.faults,
        timing,
        extra_hops=grid.condition2_extra_hops(),
    )
    separation = timeouts.pulse_separation
    skew_threshold = (
        (spec.width // 2) * (timing.epsilon * spec.layers) + timing.d_max
    )

    checkpoints_written = 0
    session_pulses = 0
    session_start = _time.perf_counter()

    def _snapshot() -> SoakCheckpoint:
        elapsed = _time.perf_counter() - session_start
        rate = session_pulses / elapsed if elapsed > 0 else 0.0
        return SoakCheckpoint(
            spec=spec,
            epochs_completed=epoch + 1,
            pulses_completed=pulses_completed,
            faults_injected=faults_injected,
            faults_healed=faults_healed,
            recoveries=recoveries,
            skew=skew,
            recovery_s=recovery,
            pulses_per_s=rate,
            rss_bytes=_rss_bytes(),
            wall_time_s=prior_wall + elapsed,
        )

    epoch = start_epoch - 1  # _snapshot reads it; resumed no-op runs report the prior epoch
    with obs.span(
        "soak.run", layers=spec.layers, width=spec.width, pulses=spec.num_pulses
    ):
        for epoch in range(start_epoch, num_epochs):
            epoch_pulses = spec.epoch_pulses(epoch)
            rng = _epoch_rng(spec, epoch)
            span_length = epoch_pulses * separation
            # Draw-order contract (mirrors DesEngine._run): adversary
            # materialization first, then the pulse schedule, then the
            # simulation's own draws.
            fault_schedule = _epoch_schedule(spec, span_length)
            adversary = (
                fault_schedule.materialize(grid, rng, exclude=())
                if fault_schedule is not None
                else None
            )
            schedule = generate_pulse_schedule(
                PulseScheduleConfig(
                    scenario=Scenario.ZERO,
                    num_pulses=epoch_pulses,
                    separation=separation,
                ),
                spec.width,
                timing,
                rng=rng,
            )
            observer = SoakObserver(
                grid,
                separation=separation,
                num_windows=epoch_pulses,
                skew_threshold=skew_threshold,
                skew=skew,
                recovery=recovery,
            )
            engine.multi_pulse(
                grid,
                timing,
                timeouts,
                schedule,
                rng=rng,
                fault_model=None,
                adversary=adversary,
                initial_states=spec.initial_states,
                observer=observer,
                collect_firings=False,
            )
            observer.finish_epoch()
            # Flush at *every* epoch boundary so serialized accumulator
            # state is independent of where checkpoints happened to land.
            skew.flush()
            recovery.flush()

            pulses_completed += epoch_pulses
            session_pulses += epoch_pulses
            faults_injected += observer.faults_injected
            faults_healed += observer.faults_healed
            recoveries += observer.recoveries

            elapsed = _time.perf_counter() - session_start
            rate = session_pulses / elapsed if elapsed > 0 else 0.0
            rss = _rss_bytes()
            obs.inc("soak.pulses", float(epoch_pulses))
            obs.inc("soak.faults_injected", float(observer.faults_injected))
            obs.inc("soak.faults_healed", float(observer.faults_healed))
            obs.gauge("soak.epochs", float(epoch + 1))
            obs.gauge("soak.pulses_per_s", rate)
            obs.gauge("soak.rss_bytes", float(rss))
            stats = skew.stats()
            obs.gauge("soak.skew_p50_s", stats["p50"])
            obs.gauge("soak.skew_p95_s", stats["p95"])
            obs.gauge("soak.skew_max_s", stats["max"])
            if obs.metrics_enabled():
                # CPU/GC accounting rides along with the per-epoch gauges so a
                # long soak's metrics snapshot shows where the process budget
                # went (leak triage pairs soak.rss_bytes with gc_collections).
                for name, value in obs.resources.usage_gauges("soak").items():
                    obs.gauge(name, value)
            if progress is not None:
                progress(
                    {
                        "epoch": float(epoch + 1),
                        "epochs": float(num_epochs),
                        "pulses": float(pulses_completed),
                        "pulses_per_s": rate,
                        "rss_bytes": float(rss),
                        "skew_p50": stats["p50"],
                        "skew_p95": stats["p95"],
                        "recoveries": float(recoveries),
                    }
                )

            if path is not None and (
                (epoch + 1) % checkpoint_every == 0 or epoch + 1 == num_epochs
            ):
                save_checkpoint(path.parent, _snapshot())
                checkpoints_written += 1

    final = _snapshot()
    return SoakResult(
        spec=spec,
        epochs=max(epoch + 1, start_epoch),
        pulses=pulses_completed,
        faults_injected=faults_injected,
        faults_healed=faults_healed,
        recoveries=recoveries,
        skew=skew,
        recovery_s=recovery,
        pulses_per_s=final.pulses_per_s,
        rss_bytes=final.rss_bytes,
        wall_time_s=final.wall_time_s,
        checkpoints_written=checkpoints_written,
        checkpoint_path=path,
        resumed_epochs=start_epoch,
    )
