"""Shared machinery for the single-pulse experiments (Tables 1-2, Figs. 8-16).

A *run set* (the paper's set ``R`` of executions) is a collection of
independent single-pulse simulations sharing the same scenario, fault count and
fault type, each with its own child RNG stream (delays, layer-0 offsets, fault
placement and fault behaviour).  The analytic pulse solver is used as the
execution engine -- it implements exactly the paper's single-pulse semantics
(constant-0/constant-1 fault behaviour, cleared initial state) and is fast
enough for the full 250-run suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.locality import inclusion_mask
from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import Scenario, parse_scenario, scenario_layer0_times
from repro.core.pulse_solver import solve_single_pulse
from repro.core.topology import HexGrid, NodeId
from repro.experiments.config import ExperimentConfig
from repro.faults.models import FaultModel, FaultType, NodeFault
from repro.faults.placement import place_faults
from repro.simulation.links import UniformRandomDelays

__all__ = ["RunSetResult", "run_scenario_set", "scenario_statistics"]


@dataclass
class RunSetResult:
    """The raw outcome of a set of single-pulse runs.

    Attributes
    ----------
    config:
        The experiment configuration used.
    scenario:
        The layer-0 scenario.
    num_faults, fault_type:
        Fault injection parameters (``fault_type`` is ``None`` when fault-free).
    trigger_times:
        One ``(L + 1, W)`` matrix per run.
    fault_models:
        One fault model per run (``None`` entries when fault-free).
    layer0_times:
        The layer-0 firing times of each run.
    """

    config: ExperimentConfig
    scenario: Scenario
    num_faults: int
    fault_type: Optional[FaultType]
    trigger_times: List[np.ndarray] = field(default_factory=list)
    fault_models: List[Optional[FaultModel]] = field(default_factory=list)
    layer0_times: List[np.ndarray] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        """Number of runs in the set."""
        return len(self.trigger_times)

    def masks(self, hops: int = 0) -> List[Optional[np.ndarray]]:
        """Inclusion masks per run for a given fault-exclusion radius ``hops``."""
        grid = self.config.make_grid()
        result: List[Optional[np.ndarray]] = []
        for fault_model in self.fault_models:
            if fault_model is None:
                result.append(None)
            else:
                result.append(inclusion_mask(grid, fault_model, hops=hops))
        return result

    def statistics(self, hops: int = 0) -> SkewStatistics:
        """Pooled skew statistics of the run set (Table 1 / Table 2 row)."""
        return SkewStatistics.from_runs(self.trigger_times, self.masks(hops))


def _build_fault_model(
    grid: HexGrid,
    num_faults: int,
    fault_type: Optional[FaultType],
    rng: np.random.Generator,
    fixed_positions: Optional[Sequence[NodeId]] = None,
) -> Optional[FaultModel]:
    """Place and parameterise the faults of one run."""
    if num_faults == 0 or fault_type is None:
        return None
    if fixed_positions is not None:
        if len(fixed_positions) != num_faults:
            raise ValueError(
                f"expected {num_faults} fixed fault positions, got {len(fixed_positions)}"
            )
        positions = [grid.validate_node(node) for node in fixed_positions]
    else:
        positions = place_faults(grid, num_faults, rng)
    faults = []
    for node in positions:
        if fault_type is FaultType.BYZANTINE:
            faults.append(NodeFault.byzantine(grid, node, rng=rng))
        elif fault_type is FaultType.FAIL_SILENT:
            faults.append(NodeFault.fail_silent(grid, node))
        else:
            raise ValueError(f"unsupported fault type for single-pulse runs: {fault_type}")
    return FaultModel(grid, faults)


def run_scenario_set(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int = 0,
    fault_type: Optional[FaultType] = FaultType.BYZANTINE,
    runs: Optional[int] = None,
    seed_salt: int = 0,
    fixed_fault_positions: Optional[Sequence[NodeId]] = None,
) -> RunSetResult:
    """Execute a set of independent single-pulse runs.

    Parameters
    ----------
    config:
        Grid, timing and run-count parameters.
    scenario:
        The layer-0 scenario (``"(i)"`` ... ``"(iv)"`` or a :class:`Scenario`).
    num_faults:
        Number of faulty nodes per run (placed uniformly at random under
        Condition 1, freshly per run).
    fault_type:
        :class:`FaultType.BYZANTINE` (per-link random constant-0/1 behaviour)
        or :class:`FaultType.FAIL_SILENT`; ignored when ``num_faults == 0``.
    runs:
        Override of ``config.runs``.
    seed_salt:
        Extra salt mixed into the seed so different experiments using the same
        configuration get independent streams.
    fixed_fault_positions:
        Deterministic fault positions (e.g. Fig. 13's node ``(1, 19)``);
        behaviour is still drawn per run for Byzantine faults.
    """
    scenario_value = parse_scenario(scenario)
    grid = config.make_grid()
    num_runs = runs if runs is not None else config.runs
    rngs = config.spawn_rngs(num_runs, salt=seed_salt)

    result = RunSetResult(
        config=config,
        scenario=scenario_value,
        num_faults=num_faults,
        fault_type=fault_type if num_faults > 0 else None,
    )
    fault_free_count = 0
    for rng in rngs:
        layer0 = scenario_layer0_times(scenario_value, grid.width, config.timing, rng=rng)
        fault_model = _build_fault_model(
            grid, num_faults, fault_type, rng, fixed_positions=fixed_fault_positions
        )
        delays = UniformRandomDelays(config.timing, rng)
        solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
        if solution.all_triggered():
            fault_free_count += 1
        result.trigger_times.append(solution.trigger_times)
        result.fault_models.append(fault_model)
        result.layer0_times.append(layer0)
    return result


def scenario_statistics(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int = 0,
    fault_type: Optional[FaultType] = FaultType.BYZANTINE,
    hops: int = 0,
    runs: Optional[int] = None,
    seed_salt: int = 0,
) -> SkewStatistics:
    """Convenience wrapper: run a scenario set and return its pooled statistics."""
    run_set = run_scenario_set(
        config,
        scenario,
        num_faults=num_faults,
        fault_type=fault_type,
        runs=runs,
        seed_salt=seed_salt,
    )
    return run_set.statistics(hops=hops)
