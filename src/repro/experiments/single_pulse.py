"""Shared machinery for the single-pulse experiments (Tables 1-2, Figs. 8-16).

A *run set* (the paper's set ``R`` of executions) is a collection of
independent single-pulse simulations sharing the same scenario, fault count and
fault type, each with its own child RNG stream (delays, layer-0 offsets, fault
placement and fault behaviour).  Execution is delegated to the campaign
subsystem (:mod:`repro.campaign`): a run set is a one-point campaign cell, so
every experiment transparently gains multiprocessing fan-out (``workers``),
the resumable on-disk cache and the choice of execution backend -- any
registered engine of :mod:`repro.engines` (task execution dispatches through
``get_engine``) -- while producing bit-identical results to the historical
serial loops (the campaign's seed derivation reproduces
``ExperimentConfig.spawn_rngs`` exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.analysis.locality import inclusion_mask
from repro.analysis.skew import SkewStatistics
from repro.campaign.records import RunRecord, stand_in_fault_model
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import Scenario, parse_scenario
from repro.core.topology import HexGrid, NodeId
from repro.experiments.config import ExperimentConfig
from repro.faults.models import FaultModel, FaultType
from repro.faults.placement import build_fault_model
from repro.simulation.network import TimerPolicy
from repro.topologies import build_topology, topology_column_wrap

__all__ = [
    "RunSetResult",
    "scenario_set_spec",
    "run_set_from_records",
    "run_scenario_set",
    "scenario_statistics",
]


@dataclass
class RunSetResult:
    """The raw outcome of a set of single-pulse runs.

    Attributes
    ----------
    config:
        The experiment configuration used.
    scenario:
        The layer-0 scenario.
    num_faults, fault_type:
        Fault injection parameters (``fault_type`` is ``None`` when fault-free).
    trigger_times:
        One ``(L + 1, W)`` matrix per run.
    fault_models:
        One fault model per run (``None`` entries when fault-free).  These are
        placement stand-ins rebuilt from the run records -- they carry the
        faulty positions (all the analysis needs), not the per-link behaviour
        drawn during simulation.
    layer0_times:
        The layer-0 firing times of each run.
    """

    config: ExperimentConfig
    scenario: Scenario
    num_faults: int
    fault_type: Optional[FaultType]
    trigger_times: List[np.ndarray] = field(default_factory=list)
    fault_models: List[Optional[FaultModel]] = field(default_factory=list)
    layer0_times: List[np.ndarray] = field(default_factory=list)
    topology: str = "cylinder"

    @property
    def num_runs(self) -> int:
        """Number of runs in the set."""
        return len(self.trigger_times)

    def make_grid(self) -> HexGrid:
        """The run set's grid (config dimensions on the run set's topology)."""
        return build_topology(self.topology, self.config.layers, self.config.width)

    def masks(self, hops: int = 0) -> List[Optional[np.ndarray]]:
        """Inclusion masks per run for a given fault-exclusion radius ``hops``."""
        grid = self.make_grid()
        result: List[Optional[np.ndarray]] = []
        for fault_model in self.fault_models:
            if fault_model is None:
                result.append(None)
            else:
                result.append(inclusion_mask(grid, fault_model, hops=hops))
        return result

    def statistics(self, hops: int = 0) -> SkewStatistics:
        """Pooled skew statistics of the run set (Table 1 / Table 2 row)."""
        return SkewStatistics.from_runs(
            self.trigger_times, self.masks(hops), wrap=topology_column_wrap(self.topology)
        )


def _build_fault_model(
    grid: HexGrid,
    num_faults: int,
    fault_type: Optional[FaultType],
    rng: np.random.Generator,
    fixed_positions: Optional[Sequence[NodeId]] = None,
) -> Optional[FaultModel]:
    """Place and parameterise the faults of one run.

    Retained as a thin alias of :func:`repro.faults.placement.build_fault_model`
    (the logic moved there so the campaign executor can share it).
    """
    return build_fault_model(grid, num_faults, fault_type, rng, fixed_positions)


def scenario_set_spec(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int = 0,
    fault_type: Optional[FaultType] = FaultType.BYZANTINE,
    runs: Optional[int] = None,
    seed_salt: int = 0,
    fixed_fault_positions: Optional[Sequence[NodeId]] = None,
    engine: str = "solver",
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
    topology: str = "cylinder",
    name: str = "scenario-set",
) -> CampaignSpec:
    """The one-cell campaign spec equivalent of a :func:`run_scenario_set` call."""
    scenario_value = parse_scenario(scenario)
    # fault_type=None means "inject nothing" regardless of num_faults -- the
    # historical _build_fault_model contract -- so the cell must be fault-free.
    cell = SweepSpec(
        layers=config.layers,
        width=config.width,
        scenario=scenario_value.value,
        num_faults=num_faults if fault_type is not None else 0,
        fault_type=(fault_type or FaultType.BYZANTINE).value,
        engine=engine,
        timer_policy=timer_policy,
        topology=topology,
        runs=runs if runs is not None else config.runs,
        seed_salt=seed_salt,
        fixed_fault_positions=fixed_fault_positions,
    )
    return CampaignSpec(name=name, seed=config.seed, timing=config.timing, cells=(cell,))


def run_set_from_records(
    config: ExperimentConfig,
    records: Sequence[RunRecord],
    scenario: Union[Scenario, str],
    num_faults: int,
    fault_type: Optional[FaultType],
    topology: str = "cylinder",
) -> RunSetResult:
    """Assemble a :class:`RunSetResult` from campaign records (task order)."""
    result = RunSetResult(
        config=config,
        scenario=parse_scenario(scenario),
        num_faults=num_faults,
        fault_type=fault_type if num_faults > 0 else None,
        topology=topology,
    )
    grid = result.make_grid()
    for record in records:
        result.trigger_times.append(record.trigger_matrix())
        result.fault_models.append(stand_in_fault_model(grid, record.faulty_nodes))
        layer0 = record.layer0_times if record.layer0_times is not None else []
        result.layer0_times.append(np.asarray(layer0, dtype=float))
    return result


def run_scenario_set(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int = 0,
    fault_type: Optional[FaultType] = FaultType.BYZANTINE,
    runs: Optional[int] = None,
    seed_salt: int = 0,
    fixed_fault_positions: Optional[Sequence[NodeId]] = None,
    engine: str = "solver",
    timer_policy: TimerPolicy = TimerPolicy.UNIFORM,
    topology: str = "cylinder",
    workers: int = 1,
) -> RunSetResult:
    """Execute a set of independent single-pulse runs.

    Parameters
    ----------
    config:
        Grid, timing and run-count parameters.
    scenario:
        The layer-0 scenario (``"(i)"`` ... ``"(iv)"`` or a :class:`Scenario`).
    num_faults:
        Number of faulty nodes per run (placed uniformly at random under
        Condition 1, freshly per run).
    fault_type:
        :class:`FaultType.BYZANTINE` (per-link random constant-0/1 behaviour)
        or :class:`FaultType.FAIL_SILENT`; ignored when ``num_faults == 0``.
    runs:
        Override of ``config.runs``.
    seed_salt:
        Extra salt mixed into the seed so different experiments using the same
        configuration get independent streams.
    fixed_fault_positions:
        Deterministic fault positions (e.g. Fig. 13's node ``(1, 19)``);
        behaviour is still drawn per run for Byzantine faults.
    engine:
        A registered engine name (:func:`repro.engines.available_engines`):
        ``"solver"`` (analytic, the paper's single-pulse semantics), ``"des"``
        (full discrete-event simulation) or ``"clocktree"`` (H-tree baseline,
        fault-free sets only).  Unknown names are rejected with the list of
        registered engines when the spec is built.
    timer_policy:
        Timer-draw policy for the DES engine.
    topology:
        Topology spec string (:mod:`repro.topologies`); the cylinder default
        keeps historical results byte-identical.
    workers:
        Worker processes for the underlying campaign runner; results are
        identical for any worker count.
    """
    spec = scenario_set_spec(
        config,
        scenario,
        num_faults=num_faults,
        fault_type=fault_type,
        runs=runs,
        seed_salt=seed_salt,
        fixed_fault_positions=fixed_fault_positions,
        engine=engine,
        timer_policy=timer_policy,
        topology=topology,
    )
    campaign = CampaignRunner(spec, workers=workers).run()
    return run_set_from_records(
        config, campaign.records, scenario, num_faults, fault_type, topology=topology
    )


def scenario_statistics(
    config: ExperimentConfig,
    scenario: Union[Scenario, str],
    num_faults: int = 0,
    fault_type: Optional[FaultType] = FaultType.BYZANTINE,
    hops: int = 0,
    runs: Optional[int] = None,
    seed_salt: int = 0,
    workers: int = 1,
) -> SkewStatistics:
    """Convenience wrapper: run a scenario set and return its pooled statistics."""
    run_set = run_scenario_set(
        config,
        scenario,
        num_faults=num_faults,
        fault_type=fault_type,
        runs=runs,
        seed_salt=seed_salt,
        workers=workers,
    )
    return run_set.statistics(hops=hops)
