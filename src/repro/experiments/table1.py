"""Table 1: intra- and inter-layer skews in the fault-free case.

250 simulation runs on a 50x20 grid per scenario, no faults; the row of each
scenario reports the pooled average, 95 %-quantile and maximum intra-layer skew
and the minimum, 5 %-quantile, average, 95 %-quantile and maximum inter-layer
skew (all in ns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.skew import SkewStatistics
from repro.campaign.records import pooled_statistics
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import SCENARIOS, Scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table

__all__ = ["PAPER_TABLE1", "Table1Result", "campaign_spec", "run"]

#: The values reported in Table 1 of the paper (ns).
PAPER_TABLE1: Dict[Scenario, Dict[str, float]] = {
    Scenario.ZERO: {
        "intra_avg": 0.395, "intra_q95": 1.000, "intra_max": 3.098,
        "inter_min": 7.164, "inter_q5": 7.356, "inter_avg": 7.937,
        "inter_q95": 8.626, "inter_max": 11.030,
    },
    Scenario.UNIFORM_DMIN: {
        "intra_avg": 0.462, "intra_q95": 1.226, "intra_max": 6.888,
        "inter_min": 7.164, "inter_q5": 7.350, "inter_avg": 7.988,
        "inter_q95": 8.795, "inter_max": 15.199,
    },
    Scenario.UNIFORM_DMAX: {
        "intra_avg": 0.473, "intra_q95": 1.260, "intra_max": 7.786,
        "inter_min": 7.164, "inter_q5": 7.349, "inter_avg": 7.997,
        "inter_q95": 8.814, "inter_max": 16.219,
    },
    Scenario.RAMP: {
        "intra_avg": 1.860, "intra_q95": 7.639, "intra_max": 8.191,
        "inter_min": 0.357, "inter_q5": 7.262, "inter_avg": 8.642,
        "inter_q95": 14.834, "inter_max": 16.390,
    },
}

_COLUMNS = (
    "intra_avg", "intra_q95", "intra_max",
    "inter_min", "inter_q5", "inter_avg", "inter_q95", "inter_max",
)


@dataclass
class Table1Result:
    """Measured Table 1 rows (one :class:`SkewStatistics` per scenario)."""

    config: ExperimentConfig
    statistics: Dict[Scenario, SkewStatistics]

    def rows(self) -> List[List[object]]:
        """Measured rows in the paper's column order."""
        rows: List[List[object]] = []
        for scenario in SCENARIOS:
            stats = self.statistics[scenario].as_row()
            rows.append([scenario_label(scenario)] + [stats[column] for column in _COLUMNS])
        return rows

    def paper_rows(self) -> List[List[object]]:
        """The paper's rows in the same format."""
        return [
            [scenario_label(scenario)] + [PAPER_TABLE1[scenario][column] for column in _COLUMNS]
            for scenario in SCENARIOS
        ]

    def render(self) -> str:
        """Text rendering: measured rows followed by the paper's rows."""
        headers = ["scenario"] + list(_COLUMNS)
        measured = format_table(headers, self.rows(), title="Table 1 (measured)")
        paper = format_table(headers, self.paper_rows(), title="Table 1 (paper)")
        return f"{measured}\n\n{paper}"


def campaign_spec(
    config: ExperimentConfig, runs: Optional[int] = None
) -> CampaignSpec:
    """The Table 1 campaign: one cell sweeping the four scenarios, no faults.

    The scenario axis enumerates in paper order, so point ``i`` inherits seed
    salt ``100 + i`` -- the exact streams of the historical per-scenario loop.
    """
    cell = SweepSpec(
        layers=config.layers,
        width=config.width,
        scenario=tuple(scenario.value for scenario in SCENARIOS),
        num_faults=0,
        runs=runs if runs is not None else config.runs,
        seed_salt=100,
    )
    return CampaignSpec(name="table1", seed=config.seed, timing=config.timing, cells=(cell,))


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    workers: int = 1,
) -> Table1Result:
    """Regenerate Table 1.

    Parameters
    ----------
    config:
        Experiment configuration; defaults to the paper's grid with the scaled
        default run count.
    runs:
        Override of the run count (use 250 for the paper-scale suite).
    workers:
        Worker processes for the campaign runner (results are identical for
        any worker count).
    """
    config = config if config is not None else ExperimentConfig()
    campaign = CampaignRunner(campaign_spec(config, runs), workers=workers).run()
    statistics: Dict[Scenario, SkewStatistics] = {
        scenario: pooled_statistics(campaign.records_for(cell_index=0, point_index=index))
        for index, scenario in enumerate(SCENARIOS)
    }
    return Table1Result(config=config, statistics=statistics)
