"""Ablation: Byzantine vs fail-silent (crash-like) faults.

Section 4.3 states that "concerning fail-silent nodes, all results are
qualitatively similar, albeit with smaller skews", and Section 3.2 argues that
crash failures are "more benign" than Byzantine ones: a silent node can only
*withhold* triggers (forcing detours of at most one extra hop under
Condition 1), whereas a Byzantine node can additionally *inject* early triggers
through stuck-at-1 links, tearing its neighbours apart in both directions.

This ablation quantifies that design-relevant claim: for the same fault count,
placement distribution and scenario, it compares the pooled skew statistics of
Byzantine runs against fail-silent runs (and against the fault-free baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.skew import SkewStatistics
from repro.campaign.records import pooled_statistics
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import Scenario, parse_scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.faults.models import FaultType

__all__ = ["FaultTypeAblation", "campaign_spec", "run"]


@dataclass
class FaultTypeAblation:
    """Skew statistics per fault type for a fixed fault count and scenario."""

    config: ExperimentConfig
    scenario: Scenario
    num_faults: int
    statistics: Dict[str, SkewStatistics]

    def rows(self) -> List[List[object]]:
        """One row per fault regime (none / fail-silent / Byzantine)."""
        rows: List[List[object]] = []
        for label in ("fault_free", "fail_silent", "byzantine"):
            stats = self.statistics[label].as_row()
            rows.append(
                [
                    label,
                    stats["intra_avg"],
                    stats["intra_q95"],
                    stats["intra_max"],
                    stats["inter_min"],
                    stats["inter_max"],
                ]
            )
        return rows

    def byzantine_excess_over_fail_silent(self) -> float:
        """How much further Byzantine faults push the maximum intra-layer skew."""
        return self.statistics["byzantine"].intra_max - self.statistics["fail_silent"].intra_max

    def render(self) -> str:
        """Text rendering."""
        headers = ["faults", "intra_avg", "intra_q95", "intra_max", "inter_min", "inter_max"]
        return format_table(
            headers,
            self.rows(),
            title=(
                f"Fault-type ablation: {self.num_faults} faults, "
                f"scenario {scenario_label(self.scenario)}"
            ),
        )


#: Cell order of the ablation campaign (one fault regime per cell).
_REGIMES = ("fault_free", "fail_silent", "byzantine")


def campaign_spec(
    config: ExperimentConfig,
    scenario: str = "iii",
    num_faults: int = 3,
    runs: Optional[int] = None,
    seed_salt: int = 2500,
) -> CampaignSpec:
    """The ablation campaign: three cells, one per fault regime.

    The fail-silent and Byzantine cells deliberately share one seed salt so
    both regimes see the *same placement stream* -- the comparison isolates
    the fault behaviour, not the fault positions.  This is exactly why the
    regimes are separate cells rather than a ``fault_type`` axis (an axis
    would assign them consecutive salts).
    """
    scenario_value = parse_scenario(scenario)
    num_runs = runs if runs is not None else config.runs
    common = dict(
        layers=config.layers,
        width=config.width,
        scenario=scenario_value.value,
        runs=num_runs,
    )
    cells = (
        SweepSpec(num_faults=0, seed_salt=seed_salt, label="fault_free", **common),
        SweepSpec(
            num_faults=num_faults,
            fault_type=FaultType.FAIL_SILENT.value,
            seed_salt=seed_salt + 1,
            label="fail_silent",
            **common,
        ),
        SweepSpec(
            num_faults=num_faults,
            fault_type=FaultType.BYZANTINE.value,
            seed_salt=seed_salt + 1,  # same placement stream as fail-silent
            label="byzantine",
            **common,
        ),
    )
    return CampaignSpec(
        name=f"ablation-faulttype-{scenario_value.value}",
        seed=config.seed,
        timing=config.timing,
        cells=cells,
    )


def run(
    config: Optional[ExperimentConfig] = None,
    scenario: str = "iii",
    num_faults: int = 3,
    runs: Optional[int] = None,
    seed_salt: int = 2500,
    workers: int = 1,
) -> FaultTypeAblation:
    """Compare fault-free, fail-silent and Byzantine runs under one scenario."""
    config = config if config is not None else ExperimentConfig()
    scenario_value = parse_scenario(scenario)
    spec = campaign_spec(
        config, scenario=scenario, num_faults=num_faults, runs=runs, seed_salt=seed_salt
    )
    campaign = CampaignRunner(spec, workers=workers).run()
    statistics: Dict[str, SkewStatistics] = {
        regime: pooled_statistics(campaign.records_for(cell_index=cell_index))
        for cell_index, regime in enumerate(_REGIMES)
    }
    return FaultTypeAblation(
        config=config,
        scenario=scenario_value,
        num_faults=num_faults,
        statistics=statistics,
    )
