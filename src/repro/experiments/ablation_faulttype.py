"""Ablation: Byzantine vs fail-silent (crash-like) faults.

Section 4.3 states that "concerning fail-silent nodes, all results are
qualitatively similar, albeit with smaller skews", and Section 3.2 argues that
crash failures are "more benign" than Byzantine ones: a silent node can only
*withhold* triggers (forcing detours of at most one extra hop under
Condition 1), whereas a Byzantine node can additionally *inject* early triggers
through stuck-at-1 links, tearing its neighbours apart in both directions.

This ablation quantifies that design-relevant claim: for the same fault count,
placement distribution and scenario, it compares the pooled skew statistics of
Byzantine runs against fail-silent runs (and against the fault-free baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import Scenario, parse_scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.single_pulse import run_scenario_set
from repro.faults.models import FaultType

__all__ = ["FaultTypeAblation", "run"]


@dataclass
class FaultTypeAblation:
    """Skew statistics per fault type for a fixed fault count and scenario."""

    config: ExperimentConfig
    scenario: Scenario
    num_faults: int
    statistics: Dict[str, SkewStatistics]

    def rows(self) -> List[List[object]]:
        """One row per fault regime (none / fail-silent / Byzantine)."""
        rows: List[List[object]] = []
        for label in ("fault_free", "fail_silent", "byzantine"):
            stats = self.statistics[label].as_row()
            rows.append(
                [
                    label,
                    stats["intra_avg"],
                    stats["intra_q95"],
                    stats["intra_max"],
                    stats["inter_min"],
                    stats["inter_max"],
                ]
            )
        return rows

    def byzantine_excess_over_fail_silent(self) -> float:
        """How much further Byzantine faults push the maximum intra-layer skew."""
        return self.statistics["byzantine"].intra_max - self.statistics["fail_silent"].intra_max

    def render(self) -> str:
        """Text rendering."""
        headers = ["faults", "intra_avg", "intra_q95", "intra_max", "inter_min", "inter_max"]
        return format_table(
            headers,
            self.rows(),
            title=(
                f"Fault-type ablation: {self.num_faults} faults, "
                f"scenario {scenario_label(self.scenario)}"
            ),
        )


def run(
    config: Optional[ExperimentConfig] = None,
    scenario: str = "iii",
    num_faults: int = 3,
    runs: Optional[int] = None,
    seed_salt: int = 2500,
) -> FaultTypeAblation:
    """Compare fault-free, fail-silent and Byzantine runs under one scenario."""
    config = config if config is not None else ExperimentConfig()
    scenario_value = parse_scenario(scenario)
    statistics: Dict[str, SkewStatistics] = {}
    statistics["fault_free"] = run_scenario_set(
        config, scenario_value, num_faults=0, runs=runs, seed_salt=seed_salt
    ).statistics()
    statistics["fail_silent"] = run_scenario_set(
        config,
        scenario_value,
        num_faults=num_faults,
        fault_type=FaultType.FAIL_SILENT,
        runs=runs,
        seed_salt=seed_salt + 1,
    ).statistics()
    statistics["byzantine"] = run_scenario_set(
        config,
        scenario_value,
        num_faults=num_faults,
        fault_type=FaultType.BYZANTINE,
        runs=runs,
        seed_salt=seed_salt + 1,  # same placement stream as fail-silent
    ).statistics()
    return FaultTypeAblation(
        config=config,
        scenario=scenario_value,
        num_faults=num_faults,
        statistics=statistics,
    )
