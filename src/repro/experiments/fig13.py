"""Fig. 13: pulse propagation with one Byzantine node at (1, 19), scenario (i).

The paper's figure shows a single run in which the node ``(1, 19)`` sends a
constant 1 to its left and right neighbours and a constant 0 to both
upper-layer neighbours.  The observation to reproduce is fault locality: the
skew increase emanating from the faulty node fades with the distance from the
fault location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.locality import skew_vs_distance
from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import Scenario, scenario_layer0_times
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.topology import Direction, NodeId
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.faults.models import FaultModel, LinkBehavior, NodeFault
from repro.simulation.links import UniformRandomDelays

__all__ = ["Fig13Result", "run", "FAULT_NODE", "SCENARIO"]

#: Position of the Byzantine node in the paper's figure.
FAULT_NODE: NodeId = (1, 19)

#: Which scenario this figure uses.
SCENARIO = Scenario.ZERO


@dataclass
class Fig13Result:
    """A single faulty pulse wave plus fault-locality metrics."""

    config: ExperimentConfig
    solution: PulseSolution
    fault_model: FaultModel
    skew_profile: Dict[int, float]

    def summary(self) -> Dict[str, float]:
        """Skew near the fault vs far away, plus overall statistics."""
        stats = SkewStatistics.from_times(
            self.solution.trigger_times, self.fault_model.correctness_mask()
        )
        near = self.skew_profile.get(1, float("nan"))
        far_values = [
            value
            for distance, value in self.skew_profile.items()
            if distance >= 3 and np.isfinite(value)
        ]
        far = max(far_values) if far_values else float("nan")
        return {
            "max_intra_skew": stats.intra_max,
            "max_inter_skew": stats.inter_max,
            "max_skew_at_distance_1": near,
            "max_skew_at_distance_ge_3": far,
        }

    def render(self) -> str:
        """Text rendering."""
        return format_kv(self.summary(), title="Fig. 13: one Byzantine node at (1, 19)")


def run(
    config: Optional[ExperimentConfig] = None, seed_salt: int = 1300
) -> Fig13Result:
    """Regenerate the Fig. 13 wave with the paper's exact fault behaviour."""
    config = config if config is not None else ExperimentConfig()
    grid = config.make_grid()
    rng = config.spawn_rngs(1, salt=seed_salt)[0]

    # Constant 1 towards the left/right neighbours, constant 0 upwards.
    fault_node = grid.validate_node(FAULT_NODE)
    neighbors = grid.out_neighbors(fault_node)
    behaviors = {}
    for direction, destination in neighbors.items():
        if direction in (Direction.LEFT, Direction.RIGHT):
            behaviors[destination] = LinkBehavior.CONSTANT_ONE
        else:
            behaviors[destination] = LinkBehavior.CONSTANT_ZERO
    fault_model = FaultModel(
        grid, [NodeFault.byzantine(grid, fault_node, behaviors=behaviors)]
    )

    layer0 = scenario_layer0_times(SCENARIO, grid.width, config.timing, rng=rng)
    delays = UniformRandomDelays(config.timing, rng)
    solution = solve_single_pulse(grid, layer0, delays, fault_model=fault_model)
    profile = skew_vs_distance(grid, solution.trigger_times, fault_model, max_distance=5)
    return Fig13Result(
        config=config, solution=solution, fault_model=fault_model, skew_profile=profile
    )
