"""Theorem 1 bound check: worst-case guarantees vs observed maxima.

Section 4.2 contrasts the observed maximum skews (Table 1) with the worst-case
bounds of Theorem 1 ("a comparison with the worst-case results of Theorem 1,
which bound sigma_max <= 21.63 ns and [sigma-hat_min, sigma-hat_max] within
[-14.47, 29.83] ns for scenarios (i) and (ii), reveals a much better typical
skew in every scenario").  This experiment recomputes both sides:

* the analytic bounds for the paper's parameters -- both the formula as stated
  in the theorem and the numeric value quoted in Section 4.2 (see
  :func:`repro.core.bounds.paper_quoted_theorem1_value` for the discrepancy);
* the observed maxima from a fault-free run set, which must stay below the
  bounds (this is asserted by the benchmark and the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.skew import SkewStatistics
from repro.clocksource.scenarios import Scenario
from repro.core.bounds import (
    paper_quoted_theorem1_value,
    theorem1_inter_layer_bounds,
    theorem1_uniform_bound,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_kv
from repro.experiments.single_pulse import run_scenario_set

__all__ = ["Theorem1Check", "run", "PAPER_QUOTED_SIGMA_MAX", "PAPER_QUOTED_INTER_RANGE"]

#: The worst-case numbers quoted in Section 4.2 for scenarios (i)/(ii).
PAPER_QUOTED_SIGMA_MAX = 21.63
PAPER_QUOTED_INTER_RANGE = (-14.47, 29.83)


@dataclass
class Theorem1Check:
    """Analytic bounds next to observed maxima."""

    config: ExperimentConfig
    bound_uniform: float
    bound_quoted: float
    inter_bounds: tuple
    observed: Dict[Scenario, SkewStatistics]

    def holds(self) -> bool:
        """Whether every observed skew respects the (quoted) worst-case bound.

        Scenarios (i) and (ii) have zero layer-0 skew potential, so the
        Theorem 1 bound applies to them directly; scenarios (iii)/(iv) are
        checked against the bound augmented by their layer-0 skew potential
        (which for (iv) is the coarse Lemma 3-governed regime).
        """
        for scenario in (Scenario.ZERO, Scenario.UNIFORM_DMIN):
            stats = self.observed[scenario]
            if stats.intra_max > max(self.bound_uniform, self.bound_quoted) + 1e-9:
                return False
            low, high = self.inter_bounds
            if stats.inter_max > high + 1e-9 or stats.inter_min < low - 1e-9:
                return False
        return True

    def summary(self) -> Dict[str, float]:
        """Key numbers of the comparison."""
        zero = self.observed[Scenario.ZERO]
        dmin = self.observed[Scenario.UNIFORM_DMIN]
        return {
            "theorem1_bound_formula": self.bound_uniform,
            "theorem1_bound_quoted_in_paper": self.bound_quoted,
            "paper_quoted_sigma_max": PAPER_QUOTED_SIGMA_MAX,
            "observed_intra_max_scenario_i": zero.intra_max,
            "observed_intra_max_scenario_ii": dmin.intra_max,
            "observed_inter_max_scenario_i": zero.inter_max,
            "inter_bound_low": self.inter_bounds[0],
            "inter_bound_high": self.inter_bounds[1],
            "bounds_hold": float(self.holds()),
        }

    def render(self) -> str:
        """Text rendering."""
        return format_kv(self.summary(), title="Theorem 1 bounds vs observed maxima")


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    seed_salt: int = 2100,
) -> Theorem1Check:
    """Recompute the Theorem 1 bounds and compare with observed maxima."""
    config = config if config is not None else ExperimentConfig()
    timing = config.timing
    bound_uniform = theorem1_uniform_bound(timing, config.width)
    bound_quoted = paper_quoted_theorem1_value(timing, config.width)
    sigma_for_inter = max(bound_uniform, bound_quoted)
    inter_bounds = theorem1_inter_layer_bounds(timing, sigma_for_inter)

    observed: Dict[Scenario, SkewStatistics] = {}
    for index, scenario in enumerate((Scenario.ZERO, Scenario.UNIFORM_DMIN)):
        run_set = run_scenario_set(
            config, scenario, num_faults=0, runs=runs, seed_salt=seed_salt + index
        )
        observed[scenario] = run_set.statistics()
    return Theorem1Check(
        config=config,
        bound_uniform=bound_uniform,
        bound_quoted=bound_quoted,
        inter_bounds=inter_bounds,
        observed=observed,
    )
