"""Fig. 15: skew statistics vs the number of Byzantine faults, scenario (iii).

For ``f in {0, ..., 5}`` Byzantine nodes the figure shows box plots (minimum,
5 %-quantile, average, 95 %-quantile, maximum) of the intra- and inter-layer
skews over 250 runs, twice: over all correct nodes (``h = 0``) and after
additionally discarding the 1-hop outgoing neighbours of the faulty nodes
(``h = 1``).  The observations to reproduce:

* skews grow only moderately with ``f`` -- far slower than the worst-case
  allowance of roughly ``5 f d+``;
* with ``h = 1`` the fault effects essentially disappear (strong locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.skew import SkewStatistics
from repro.campaign.records import pooled_statistics
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec, SweepSpec
from repro.clocksource.scenarios import Scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.faults.models import FaultType

__all__ = ["FaultSweepResult", "run", "SCENARIO", "FAULT_COUNTS", "HOP_LEVELS"]

#: Which scenario this figure uses.
SCENARIO = Scenario.UNIFORM_DMAX

#: The fault counts of the sweep (the paper's ``f in [6]``).
FAULT_COUNTS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5)

#: Exclusion radii shown in the figure.
HOP_LEVELS: Tuple[int, ...] = (0, 1)


@dataclass
class FaultSweepResult:
    """Skew statistics per fault count and exclusion radius.

    Shared by the Fig. 15 and Fig. 16 experiments.
    """

    config: ExperimentConfig
    scenario: Scenario
    fault_type: FaultType
    statistics: Dict[Tuple[int, int], SkewStatistics]

    def stats(self, num_faults: int, hops: int = 0) -> SkewStatistics:
        """Statistics of one (f, h) cell."""
        return self.statistics[(num_faults, hops)]

    def rows(self, hops: int = 0) -> List[List[object]]:
        """One row per fault count for a given exclusion radius."""
        rows: List[List[object]] = []
        for num_faults in FAULT_COUNTS:
            key = (num_faults, hops)
            if key not in self.statistics:
                continue
            row = self.statistics[key].as_row()
            rows.append(
                [
                    num_faults,
                    row["intra_avg"],
                    row["intra_q95"],
                    row["intra_max"],
                    row["inter_min"],
                    row["inter_avg"],
                    row["inter_q95"],
                    row["inter_max"],
                ]
            )
        return rows

    def max_skew_growth(self, hops: int = 0) -> float:
        """Growth of the maximum intra-layer skew from f = 0 to the largest f."""
        available = sorted({f for (f, h) in self.statistics if h == hops})
        base = self.statistics[(available[0], hops)].intra_max
        worst = max(self.statistics[(f, hops)].intra_max for f in available)
        return worst - base

    def render(self) -> str:
        """Text rendering of both exclusion radii."""
        headers = [
            "f", "intra_avg", "intra_q95", "intra_max",
            "inter_min", "inter_avg", "inter_q95", "inter_max",
        ]
        parts = []
        for hops in HOP_LEVELS:
            parts.append(
                format_table(
                    headers,
                    self.rows(hops),
                    title=(
                        f"Scenario {scenario_label(self.scenario)}, "
                        f"{self.fault_type.value} faults, h = {hops}"
                    ),
                )
            )
        return "\n\n".join(parts)


def _sweep_spec(
    config: ExperimentConfig,
    scenario: Scenario,
    fault_type: FaultType,
    fault_counts: Sequence[int],
    runs: Optional[int],
    seed_salt: int,
) -> CampaignSpec:
    """One cell sweeping the fault-count axis; point ``i`` gets salt ``base + i``."""
    cell = SweepSpec(
        layers=config.layers,
        width=config.width,
        scenario=scenario.value,
        num_faults=tuple(fault_counts),
        fault_type=fault_type.value,
        runs=runs if runs is not None else config.runs,
        seed_salt=seed_salt,
    )
    return CampaignSpec(
        name=f"fault-sweep-{scenario.value}-{fault_type.value}",
        seed=config.seed,
        timing=config.timing,
        cells=(cell,),
    )


def _sweep(
    config: ExperimentConfig,
    scenario: Scenario,
    fault_type: FaultType,
    fault_counts: Sequence[int],
    runs: Optional[int],
    seed_salt: int,
    workers: int = 1,
) -> FaultSweepResult:
    spec = _sweep_spec(config, scenario, fault_type, fault_counts, runs, seed_salt)
    campaign = CampaignRunner(spec, workers=workers).run()
    statistics: Dict[Tuple[int, int], SkewStatistics] = {}
    for index, num_faults in enumerate(fault_counts):
        records = campaign.records_for(cell_index=0, point_index=index)
        for hops in HOP_LEVELS:
            statistics[(num_faults, hops)] = pooled_statistics(records, hops=hops)
    return FaultSweepResult(
        config=config, scenario=scenario, fault_type=fault_type, statistics=statistics
    )


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    fault_counts: Sequence[int] = FAULT_COUNTS,
    fault_type: FaultType = FaultType.BYZANTINE,
    seed_salt: int = 1500,
    workers: int = 1,
) -> FaultSweepResult:
    """Regenerate the Fig. 15 sweep (scenario (iii), Byzantine faults)."""
    config = config if config is not None else ExperimentConfig()
    return _sweep(config, SCENARIO, fault_type, fault_counts, runs, seed_salt, workers=workers)
