"""Extension experiment: HEX vs clock-tree scaling (the title claim).

Not a table of the paper, but the quantitative version of the introduction's
argument: as the number of clocked endpoints grows,

* the clock tree's longest wire segment grows like ``sqrt(n)`` while HEX links
  stay at unit length;
* the tree's neighbour skew (physically adjacent sinks in different subtrees)
  grows with the accumulated delay variation while HEX's neighbour-skew bound
  grows only through the ``ceil(W eps / d+) eps`` term;
* a single tree fault disconnects up to a quarter of the die (or all of it, at
  the root) while HEX tolerates isolated faults outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.clocktree.comparison import ScalingComparison, compare_scaling
from repro.core.parameters import TimingConfig
from repro.experiments.report import format_table

__all__ = ["ClockTreeComparisonResult", "run", "DEFAULT_TREE_LEVELS"]

#: H-tree recursion depths of the default sweep (16 to 1024 sinks).
DEFAULT_TREE_LEVELS = (2, 3, 4, 5)


@dataclass
class ClockTreeComparisonResult:
    """The scaling-comparison rows."""

    rows_data: List[ScalingComparison]

    def rows(self) -> List[List[object]]:
        """Row lists in a fixed column order."""
        columns = (
            "n", "hex_max_wire", "tree_max_wire", "hex_skew_bound",
            "tree_max_neighbor_skew", "tree_depth",
            "hex_faults_tolerated", "tree_worst_internal_fault_loss",
        )
        return [[row.as_row()[column] for column in columns] for row in self.rows_data]

    def wire_length_growth(self) -> float:
        """Ratio of the tree's longest segment between the largest and smallest size."""
        first = self.rows_data[0].tree_max_wire_length
        last = self.rows_data[-1].tree_max_wire_length
        return last / first

    def render(self) -> str:
        """Text rendering."""
        headers = [
            "n", "hex max wire", "tree max wire", "hex skew bound",
            "tree max nbr skew", "tree depth", "hex faults tol.", "tree fault loss",
        ]
        return format_table(headers, self.rows(), title="HEX vs clock tree scaling")


def run(
    tree_levels: Sequence[int] = DEFAULT_TREE_LEVELS,
    timing: Optional[TimingConfig] = None,
    runs_per_size: int = 5,
    seed: int = 0,
) -> ClockTreeComparisonResult:
    """Regenerate the HEX-vs-clock-tree scaling comparison."""
    rows = compare_scaling(
        tree_levels=tree_levels, timing=timing, runs_per_size=runs_per_size, seed=seed
    )
    return ClockTreeComparisonResult(rows_data=rows)
