"""Fig. 12: per-layer inter-layer skews for scenarios (iii) and (iv).

For each layer (truncated to the first 30) the figure plots the per-run
minimum, average and maximum inter-layer skew, averaged over 250 runs, with
standard deviations.  The behaviour to reproduce: in scenario (iv) the widely
discrepant skews of the lower layers smooth out after roughly layer ``W - 2``
(Lemma 3), while scenario (iii) is flat from the start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.skew import per_layer_inter_stats
from repro.clocksource.scenarios import Scenario, scenario_label
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.single_pulse import run_scenario_set

__all__ = ["Fig12Result", "run", "SCENARIOS_USED", "MAX_LAYER"]

#: The two scenarios shown in the figure.
SCENARIOS_USED = (Scenario.UNIFORM_DMAX, Scenario.RAMP)

#: The figure truncates the layer axis to the first 30 layers.
MAX_LAYER = 30


@dataclass
class Fig12Result:
    """Per-layer inter-layer skew series for the two scenarios."""

    config: ExperimentConfig
    series: Dict[Scenario, Dict[str, np.ndarray]]

    def smoothing_layer(self, scenario: Scenario, tolerance: float = 0.5) -> int:
        """First layer from which the per-layer max skew stays within
        ``tolerance`` ns of its value at the top of the evaluated range.

        Used to check the Lemma 3 prediction that scenario (iv) smooths out
        after about ``W - 2`` layers.
        """
        data = self.series[scenario]
        max_series = data["max"]
        final = float(np.nanmean(max_series[-3:]))
        for index in range(len(max_series)):
            if np.all(np.abs(max_series[index:] - final) <= tolerance):
                return int(data["layer"][index])
        return int(data["layer"][-1])

    def rows(self, scenario: Scenario) -> List[List[object]]:
        """Per-layer rows (layer, min, avg, max, std) for one scenario."""
        data = self.series[scenario]
        return [
            [int(layer), data["min"][i], data["avg"][i], data["max"][i], data["std"][i]]
            for i, layer in enumerate(data["layer"])
        ]

    def render(self) -> str:
        """Text rendering of both scenarios."""
        parts = []
        for scenario in SCENARIOS_USED:
            parts.append(
                format_table(
                    ["layer", "min", "avg", "max", "std"],
                    self.rows(scenario),
                    title=f"Fig. 12, scenario {scenario_label(scenario)}",
                )
            )
        return "\n\n".join(parts)


def run(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[int] = None,
    seed_salt: int = 1200,
) -> Fig12Result:
    """Regenerate the Fig. 12 per-layer series."""
    config = config if config is not None else ExperimentConfig()
    series: Dict[Scenario, Dict[str, np.ndarray]] = {}
    for index, scenario in enumerate(SCENARIOS_USED):
        run_set = run_scenario_set(
            config, scenario, num_faults=0, runs=runs, seed_salt=seed_salt + index
        )
        series[scenario] = per_layer_inter_stats(run_set.trigger_times, max_layer=MAX_LAYER)
    return Fig12Result(config=config, series=series)
