"""Fig. 17: a single Byzantine node forcing ~5 d+ of skew under scenario (iv).

The deterministic construction of :func:`repro.core.worstcase.
fig17_single_byzantine_worst_case`: all delays ``d+``, layer-0 times rising by
``d+`` per column, one silent node mid-grid.  Without the fault every left-up
diagonal fires simultaneously; the fault forces its upper neighbourhood onto a
detour.  The quantities to reproduce: a maximum intra-layer skew of roughly
``5 d+`` in the fault's neighbourhood and an inter-layer skew smaller by about
``d+``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.skew import inter_layer_skews, intra_layer_skews
from repro.core.parameters import TimingConfig
from repro.core.pulse_solver import PulseSolution, solve_single_pulse
from repro.core.worstcase import WorstCaseConstruction, fig17_single_byzantine_worst_case
from repro.experiments.report import format_kv

__all__ = ["Fig17Result", "run"]


@dataclass
class Fig17Result:
    """Measured skews of the Fig. 17 construction, with and without the fault."""

    construction: WorstCaseConstruction
    with_fault: PulseSolution
    without_fault: PulseSolution
    max_intra_skew: float
    max_inter_skew: float
    fault_free_max_intra_skew: float

    def summary(self) -> Dict[str, float]:
        """Key numbers, normalised by ``d+`` for direct comparison with the figure."""
        d_max = self.construction.timing.d_max
        return {
            "max_intra_skew": self.max_intra_skew,
            "max_intra_skew_in_dmax": self.max_intra_skew / d_max,
            "max_inter_skew": self.max_inter_skew,
            "max_inter_skew_in_dmax": self.max_inter_skew / d_max,
            "intra_minus_inter_in_dmax": (self.max_intra_skew - self.max_inter_skew) / d_max,
            "fault_free_max_intra_skew": self.fault_free_max_intra_skew,
        }

    def render(self) -> str:
        """Text rendering."""
        return format_kv(self.summary(), title="Fig. 17: single-fault worst case, scenario (iv)")


def run(timing: Optional[TimingConfig] = None) -> Fig17Result:
    """Build and evaluate the Fig. 17 construction."""
    timing = timing if timing is not None else TimingConfig.paper_defaults()
    construction = fig17_single_byzantine_worst_case(timing)
    grid = construction.grid

    with_fault = solve_single_pulse(
        grid,
        construction.layer0_times,
        construction.delays,
        fault_model=construction.fault_model,
    )
    without_fault = solve_single_pulse(
        grid,
        construction.layer0_times,
        construction.delays,
        fault_model=construction.reference_fault_model,
    )

    # Restrict the measurement to a window of columns around the fault: the
    # monotone layer-0 ramp used by the construction has a huge artificial
    # skew where the cylinder wraps around (between columns W-1 and 0), which
    # is irrelevant to the single-fault effect the figure illustrates.
    fault_layer, fault_column = construction.focus_node  # type: ignore[misc]
    window = 5
    columns = [
        column
        for column in range(fault_column - window, fault_column + window)
        if 0 <= column < grid.width - 1
    ]

    mask = construction.fault_model.correctness_mask()
    reference_mask = (
        construction.reference_fault_model.correctness_mask()
        if construction.reference_fault_model is not None
        else None
    )
    intra = intra_layer_skews(with_fault.trigger_times, mask)[1:, columns]
    inter = inter_layer_skews(with_fault.trigger_times, mask)[1:, columns, :]
    intra_ff = intra_layer_skews(without_fault.trigger_times, reference_mask)[1:, columns]

    return Fig17Result(
        construction=construction,
        with_fault=with_fault,
        without_fault=without_fault,
        max_intra_skew=float(np.nanmax(intra)),
        max_inter_skew=float(np.nanmax(np.abs(inter))),
        fault_free_max_intra_skew=float(np.nanmax(intra_ff)),
    )
