"""Multi-pulse layer-0 schedules with pulse separation ``S``.

The self-stabilization experiments (Section 4.4) need the layer-0 sources to
generate a whole sequence of pulses such that consecutive pulses are separated
by at least the pulse-separation time ``S`` of Condition 2:
``t^(k+1)_min >= t^(k)_max + S``.  :func:`generate_pulse_schedule` produces such
schedules, drawing the per-pulse initial skews from one of the Table 1
scenarios (independently per pulse by default, as the paper's testbench does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.clocksource.scenarios import Scenario, scenario_layer0_times
from repro.core.parameters import TimeoutConfig, TimingConfig

__all__ = ["PulseScheduleConfig", "generate_pulse_schedule"]


@dataclass(frozen=True)
class PulseScheduleConfig:
    """Configuration of a multi-pulse layer-0 schedule.

    Attributes
    ----------
    scenario:
        The initial-skew scenario applied to each pulse.
    num_pulses:
        Number of pulses to generate.
    separation:
        The pulse-separation time ``S``: the gap enforced between the latest
        firing of pulse ``k`` and the earliest firing of pulse ``k + 1``.
    extra_separation:
        Additional slack added on top of ``S`` (the paper uses "nominal values
        compatible with the maximum observed skews", i.e. some headroom).
    redraw_offsets:
        Whether the per-column skew offsets are re-drawn for every pulse
        (default) or drawn once and reused for all pulses.
    """

    scenario: Union[Scenario, str]
    num_pulses: int
    separation: float
    extra_separation: float = 0.0
    redraw_offsets: bool = True

    def __post_init__(self) -> None:
        if self.num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {self.num_pulses}")
        if self.separation <= 0:
            raise ValueError(f"separation must be positive, got {self.separation}")
        if self.extra_separation < 0:
            raise ValueError(
                f"extra_separation must be non-negative, got {self.extra_separation}"
            )


def generate_pulse_schedule(
    config: PulseScheduleConfig,
    width: int,
    timing: TimingConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Generate the layer-0 firing times of a sequence of pulses.

    Parameters
    ----------
    config:
        The schedule configuration.
    width:
        Grid width ``W`` (number of layer-0 sources).
    timing:
        Delay bounds (needed by the skew scenarios).
    rng, seed:
        Randomness for the stochastic scenarios.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_pulses, W)``; row ``k`` holds the firing times of
        pulse ``k``.  Consecutive rows satisfy
        ``min(row[k + 1]) >= max(row[k]) + separation + extra_separation``.
    """
    generator = rng if rng is not None else np.random.default_rng(seed)
    schedule = np.zeros((config.num_pulses, width), dtype=float)
    offsets = scenario_layer0_times(config.scenario, width, timing, rng=generator)
    base = 0.0
    for pulse in range(config.num_pulses):
        if config.redraw_offsets and pulse > 0:
            offsets = scenario_layer0_times(config.scenario, width, timing, rng=generator)
        schedule[pulse, :] = base + offsets
        base = float(schedule[pulse, :].max()) + config.separation + config.extra_separation
    return schedule


def schedule_from_timeouts(
    scenario: Union[Scenario, str],
    num_pulses: int,
    timeouts: TimeoutConfig,
    width: int,
    timing: TimingConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    extra_separation: float = 0.0,
) -> np.ndarray:
    """Convenience wrapper: build a schedule using the ``S`` of a :class:`TimeoutConfig`."""
    config = PulseScheduleConfig(
        scenario=scenario,
        num_pulses=num_pulses,
        separation=timeouts.pulse_separation,
        extra_separation=extra_separation,
    )
    return generate_pulse_schedule(config, width, timing, rng=rng, seed=seed)
