"""The four layer-0 initial-skew scenarios of the evaluation (Table 1).

Every experiment of Section 4 drives layer 0 with one of four choices for the
firing times ``t_{0,i}`` of the clock sources:

========  =====================  ==========================================
Scenario  Paper label            Firing times
========  =====================  ==========================================
(i)       ``0``                  all zero (``sigma_0 = 0``, ``Delta_0 = 0``)
(ii)      ``random in [0, d-]``  i.i.d. uniform in ``[0, d-]``
(iii)     ``random in [0, d+]``  i.i.d. uniform in ``[0, d+]``
(iv)      ``ramp d+``            ``t_{0,i+1} = t_{0,i} + d+`` for
                                 ``0 <= i < W/2`` and ``t_{0,i+1} = t_{0,i} -
                                 d+`` for ``W/2 <= i < W - 1``
========  =====================  ==========================================

Scenario (iii) models the *average-case* and (iv) the *worst-case* input of a
layer-0 clock generation scheme whose neighbour skew bound is ``d+``.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

import numpy as np

from repro.core.bounds import skew_potential
from repro.core.parameters import TimingConfig

__all__ = [
    "Scenario",
    "SCENARIOS",
    "parse_scenario",
    "scenario_layer0_times",
    "scenario_skew_potential",
    "scenario_label",
]


class Scenario(enum.Enum):
    """The layer-0 initial-skew scenarios (i)-(iv) of the paper."""

    ZERO = "zero"
    UNIFORM_DMIN = "uniform_dmin"
    UNIFORM_DMAX = "uniform_dmax"
    RAMP = "ramp"

    @property
    def roman(self) -> str:
        """The paper's roman-numeral label ("(i)" ... "(iv)")."""
        return {
            Scenario.ZERO: "(i)",
            Scenario.UNIFORM_DMIN: "(ii)",
            Scenario.UNIFORM_DMAX: "(iii)",
            Scenario.RAMP: "(iv)",
        }[self]

    @property
    def description(self) -> str:
        """The paper's textual description of the layer-0 skews."""
        return {
            Scenario.ZERO: "0",
            Scenario.UNIFORM_DMIN: "random in [0, d-]",
            Scenario.UNIFORM_DMAX: "random in [0, d+]",
            Scenario.RAMP: "ramp d+",
        }[self]


#: All scenarios in the paper's order (i) to (iv).
SCENARIOS = (
    Scenario.ZERO,
    Scenario.UNIFORM_DMIN,
    Scenario.UNIFORM_DMAX,
    Scenario.RAMP,
)

_ALIASES = {
    "zero": Scenario.ZERO,
    "i": Scenario.ZERO,
    "(i)": Scenario.ZERO,
    "uniform_dmin": Scenario.UNIFORM_DMIN,
    "ii": Scenario.UNIFORM_DMIN,
    "(ii)": Scenario.UNIFORM_DMIN,
    "uniform_dmax": Scenario.UNIFORM_DMAX,
    "iii": Scenario.UNIFORM_DMAX,
    "(iii)": Scenario.UNIFORM_DMAX,
    "ramp": Scenario.RAMP,
    "iv": Scenario.RAMP,
    "(iv)": Scenario.RAMP,
}


def parse_scenario(scenario: Union[Scenario, str]) -> Scenario:
    """Coerce a :class:`Scenario` or one of its string aliases to the enum.

    Accepted aliases include the machine names (``"zero"``, ``"ramp"``, ...)
    and the paper's roman numerals with or without parentheses (``"iii"``,
    ``"(iv)"``, ...).
    """
    if isinstance(scenario, Scenario):
        return scenario
    key = scenario.strip().lower()
    if key in _ALIASES:
        return _ALIASES[key]
    raise ValueError(
        f"unknown scenario {scenario!r}; expected one of "
        f"{sorted(set(alias for alias in _ALIASES))}"
    )


# Backwards-compatible internal alias.
_coerce = parse_scenario


def scenario_label(scenario: Union[Scenario, str]) -> str:
    """Human-readable label, e.g. ``"(iv) ramp d+"``."""
    value = _coerce(scenario)
    return f"{value.roman} {value.description}"


def scenario_layer0_times(
    scenario: Union[Scenario, str],
    width: int,
    timing: TimingConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Draw the layer-0 firing times for one pulse under a given scenario.

    Parameters
    ----------
    scenario:
        A :class:`Scenario` or one of its string aliases (``"zero"``, ``"i"``,
        ``"(iii)"``, ``"ramp"``, ...).
    width:
        The grid width ``W``.
    timing:
        The delay bounds (provide ``d-`` and ``d+``).
    rng, seed:
        Randomness for the stochastic scenarios (ii) and (iii).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(W,)`` of firing times, with minimum 0 for the
        deterministic scenarios.
    """
    value = _coerce(scenario)
    if width < 3:
        raise ValueError(f"width must be at least 3, got {width}")
    if value in (Scenario.UNIFORM_DMIN, Scenario.UNIFORM_DMAX):
        generator = rng if rng is not None else np.random.default_rng(seed)
        upper = timing.d_min if value is Scenario.UNIFORM_DMIN else timing.d_max
        return generator.uniform(0.0, upper, size=width).astype(float)
    if value is Scenario.ZERO:
        return np.zeros(width, dtype=float)
    # Scenario (iv): ramp up by d+ per column until W/2, then down by d+.
    times = np.zeros(width, dtype=float)
    half = width // 2
    for column in range(1, width):
        step = timing.d_max if column <= half else -timing.d_max
        times[column] = times[column - 1] + step
    times -= times.min()
    return times


def scenario_skew_potential(
    scenario: Union[Scenario, str],
    width: int,
    timing: TimingConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> float:
    """The layer-0 skew potential ``Delta_0`` of a scenario (Definition 3).

    For the deterministic scenarios this is exact; for the stochastic ones the
    potential of one concrete draw is returned.  The paper quotes
    ``Delta_0 = 0`` for (i)/(ii), ``Delta_0 ~ eps`` for (iii) and
    ``Delta_0 ~ W eps / 2`` for (iv).
    """
    times = scenario_layer0_times(scenario, width, timing, rng=rng, seed=seed)
    return skew_potential(times, timing.d_min)
