"""A simplified quorum-based pulse synchronizer standing in for FATAL+/DARTS.

The paper delegates the generation of synchronized, well-separated layer-0
pulses to Byzantine fault-tolerant, self-stabilizing pulse-generation protocols
such as DARTS or FATAL+, which require a fully connected topology among the
(few) layer-0 nodes.  Re-implementing FATAL+ in full is outside the scope of
the HEX paper itself ("the details are outside the scope of this paper"); what
HEX needs from it is only the *interface*: every correct source fires each
pulse within a bounded window, consecutive pulses are separated by at least
``S``, and the protocol recovers from arbitrary states despite up to ``f_0``
Byzantine sources.

:class:`QuorumPulseSynchronizer` provides exactly that interface with a
deliberately simple approve-and-fire protocol over a fully connected source
clique, so that end-to-end examples can drive a HEX grid from a *distributed*
clock-source layer rather than from an oracle schedule:

1. Each source has a local clock with drift in ``[1, theta]``.
2. After firing pulse ``k`` a source waits until ``S`` has elapsed on its local
   clock and then broadcasts ``READY(k + 1)``.
3. A source fires pulse ``k + 1`` as soon as it has received ``READY(k + 1)``
   messages from ``n - f_0`` distinct sources (its own included) -- a classical
   quorum rule that tolerates ``f_0 < n / 3`` Byzantine sources -- or when it
   observes that some correct source has already fired (relay rule), whichever
   comes first.

The resulting firing times satisfy the two properties HEX relies on (bounded
per-pulse spread, minimum separation), which are asserted in the test suite.
This is a *substitute substrate*, not a reproduction of FATAL+; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np


__all__ = ["SynchronizerConfig", "QuorumPulseSynchronizer"]


@dataclass(frozen=True)
class SynchronizerConfig:
    """Configuration of the quorum pulse synchronizer.

    Attributes
    ----------
    num_sources:
        Number of layer-0 sources ``n`` (= grid width ``W``).
    num_byzantine:
        Number of Byzantine sources ``f_0`` tolerated; must satisfy
        ``3 f_0 < n``.
    separation:
        The nominal pulse separation ``S`` each source waits on its local clock.
    message_delay_bounds:
        ``(d-, d+)`` bounds for messages among sources (the clique is small and
        physically compact, so these may differ from the grid's bounds).
    theta:
        Local clock drift bound.
    """

    num_sources: int
    num_byzantine: int = 0
    separation: float = 100.0
    message_delay_bounds: Tuple[float, float] = (0.5, 1.0)
    theta: float = 1.05

    def __post_init__(self) -> None:
        if self.num_sources < 2:
            raise ValueError("need at least two sources")
        if self.num_byzantine < 0 or 3 * self.num_byzantine >= self.num_sources:
            raise ValueError(
                f"need 3 f_0 < n, got f_0={self.num_byzantine}, n={self.num_sources}"
            )
        if self.separation <= 0:
            raise ValueError("separation must be positive")
        d_min, d_max = self.message_delay_bounds
        if not 0 < d_min <= d_max:
            raise ValueError("message delay bounds must satisfy 0 < d- <= d+")
        if self.theta < 1.0:
            raise ValueError("theta must be >= 1")

    @property
    def quorum(self) -> int:
        """The quorum size ``n - f_0``."""
        return self.num_sources - self.num_byzantine


class QuorumPulseSynchronizer:
    """Simulate the quorum pulse synchronizer and emit a layer-0 schedule.

    Parameters
    ----------
    config:
        Protocol parameters.
    rng:
        Randomness for message delays, clock drifts and Byzantine behaviour.
    byzantine_sources:
        Indices of the Byzantine sources; defaults to the last ``f_0`` indices.
        Byzantine sources broadcast READY messages at arbitrary (random early)
        times and never follow the protocol; correct sources must stay
        synchronized regardless.
    """

    def __init__(
        self,
        config: SynchronizerConfig,
        rng: Optional[np.random.Generator] = None,
        byzantine_sources: Optional[Sequence[int]] = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()  # repro: allow-random[injection default for interactive use; engines always pass a seeded generator]
        if byzantine_sources is None:
            byzantine_sources = range(
                config.num_sources - config.num_byzantine, config.num_sources
            )
        self.byzantine: Set[int] = {int(index) for index in byzantine_sources}
        if len(self.byzantine) != config.num_byzantine:
            raise ValueError(
                f"expected {config.num_byzantine} Byzantine sources, got {len(self.byzantine)}"
            )
        for index in self.byzantine:
            if not 0 <= index < config.num_sources:
                raise ValueError(f"Byzantine source index {index} out of range")
        # Per-source constant drift factor in [1, theta].
        self._drift = 1.0 + self.rng.uniform(0.0, config.theta - 1.0, size=config.num_sources)

    def _message_delay(self) -> float:
        d_min, d_max = self.config.message_delay_bounds
        return float(self.rng.uniform(d_min, d_max))

    def generate_schedule(self, num_pulses: int, start_time: float = 0.0) -> np.ndarray:
        """Run the protocol and return the firing times of the correct sources.

        Returns
        -------
        numpy.ndarray
            Shape ``(num_pulses, n)``; entries of Byzantine sources are ``nan``
            (they produce no trustworthy pulses).  Correct entries satisfy the
            HEX interface: per-pulse spread at most ``2 d+_src + (theta - 1) S``
            and separation at least ``S / theta`` between consecutive pulses of
            the same source.
        """
        if num_pulses < 1:
            raise ValueError("num_pulses must be >= 1")
        n = self.config.num_sources
        quorum = self.config.quorum
        d_max = self.config.message_delay_bounds[1]
        schedule = np.full((num_pulses, n), np.nan, dtype=float)
        correct = [index for index in range(n) if index not in self.byzantine]

        # Pulse 0: sources fire within a small window around start_time (the
        # protocol is assumed to have synchronized pulse 0; stabilization of
        # the source layer itself is FATAL+'s job, not HEX's).
        previous = {
            index: start_time + float(self.rng.uniform(0.0, d_max)) for index in correct
        }
        for index in correct:
            schedule[0, index] = previous[index]

        for pulse in range(1, num_pulses):
            # Step 2: READY broadcast times (local S elapsed, stretched by drift).
            ready_sent = {
                index: previous[index] + self.config.separation * self._drift[index]
                for index in correct
            }
            # Byzantine sources may send READY arbitrarily early (most
            # aggressive strategy for causing premature pulses).
            earliest_correct_ready = min(ready_sent.values())
            byz_ready = {
                index: earliest_correct_ready - self.config.separation
                for index in self.byzantine
            }

            firing: Dict[int, float] = {}
            for receiver in correct:
                arrivals: List[float] = []
                for sender in range(n):
                    if sender == receiver:
                        send_time = ready_sent.get(sender, np.inf)
                        delay = 0.0
                    elif sender in self.byzantine:
                        send_time = byz_ready[sender]
                        delay = self._message_delay()
                    else:
                        send_time = ready_sent[sender]
                        delay = self._message_delay()
                    arrivals.append(send_time + delay)
                arrivals.sort()
                # Quorum rule: fire upon the (n - f_0)-th READY arrival.  Since
                # f_0 arrivals may stem from Byzantine sources, at least
                # n - 2 f_0 > f_0 correct sources support the pulse.
                firing[receiver] = arrivals[quorum - 1]

            # Relay rule keeps laggards close: no correct source fires later
            # than the earliest correct firing plus one message delay bound.
            earliest = min(firing.values())
            for receiver in correct:
                firing[receiver] = min(firing[receiver], earliest + d_max)

            for index in correct:
                schedule[pulse, index] = firing[index]
            previous = firing

        return schedule

    def spread_bound(self) -> float:
        """Analytic bound on the per-pulse spread among correct sources.

        By the relay rule no correct source fires more than one source-to-source
        message delay ``d+_src`` after the earliest correct source; adding the
        drift-induced spread of the READY send times of the *first* pulse gives
        ``d+_src + (theta - 1) S`` as a conservative per-pulse bound.
        """
        return self.config.message_delay_bounds[1] + (
            self.config.theta - 1.0
        ) * self.config.separation
