"""Layer-0 clock-source substrate.

HEX assumes that the ``W`` nodes of layer 0 act as synchronized clock sources
generating well-separated pulses (Section 2); the paper points at DARTS and
FATAL+ as suitable implementations.  This subpackage provides

* :mod:`repro.clocksource.scenarios` -- the four initial-skew scenarios used in
  every evaluation table/figure: (i) zero skew, (ii) uniform in ``[0, d-]``,
  (iii) uniform in ``[0, d+]``, (iv) a ramp of ``+-d+`` per column;
* :mod:`repro.clocksource.generator` -- multi-pulse schedules with pulse
  separation ``S`` and per-pulse scenario offsets, used by the stabilization
  experiments;
* :mod:`repro.clocksource.fatal` -- a deliberately simplified, quorum-based,
  self-stabilizing pulse synchronizer standing in for FATAL+/DARTS, showing how
  HEX integrates with a distributed multi-source clock generation layer.
"""

from repro.clocksource.fatal import QuorumPulseSynchronizer, SynchronizerConfig
from repro.clocksource.generator import PulseScheduleConfig, generate_pulse_schedule
from repro.clocksource.scenarios import (
    SCENARIOS,
    Scenario,
    scenario_label,
    scenario_layer0_times,
    scenario_skew_potential,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "scenario_layer0_times",
    "scenario_skew_potential",
    "scenario_label",
    "generate_pulse_schedule",
    "PulseScheduleConfig",
    "QuorumPulseSynchronizer",
    "SynchronizerConfig",
]
