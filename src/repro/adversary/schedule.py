"""Declarative, JSON-round-trippable schedules of time-varying faults.

HEX's headline property is *self-stabilization*: the grid recovers from
transient faults and arbitrary initial states.  Static
:class:`~repro.faults.models.FaultModel` instances frozen at ``t = 0`` cannot
exercise that -- nothing breaks mid-run, heals, or moves.  A
:class:`FaultSchedule` describes exactly such dynamics, declaratively:

* **timed events** -- ``inject`` (a node turns Byzantine or fail-silent),
  ``heal`` (a transient fault ends), ``crash`` (correct until the event,
  silent after) and ``flip_behavior`` (a Byzantine node re-chooses its
  per-link constant-0/constant-1 outputs);
* **generators** -- ``burst`` (``f`` simultaneous faults, optionally healed
  after a duration), ``cluster`` (spatially-correlated faults around a random
  center, placed under Condition 1 via :mod:`repro.faults.placement`),
  ``intermittent_link`` (one link toggling between correct and stuck), and
  ``mobile`` (a Byzantine fault wandering across neighbouring nodes).

Schedules are frozen, hashable and JSON-round-trippable
(``FaultSchedule.from_json(s.to_json()) == s``), so they ride inside
:class:`~repro.engines.base.RunSpec` and sweep as campaign axes with stable
content keys.  All randomness (placements, Byzantine behaviours, walks) is
resolved by :meth:`FaultSchedule.materialize` from the run's seeded generator
-- *after* the static fault model's draws, in directive order -- producing a
:class:`~repro.adversary.runtime.ScheduledAdversary` of concrete actions that
consume no randomness at run time.  That placement in the draw order is part
of the reproducibility contract: specs without a schedule consume exactly the
historical stream.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.adversary.runtime import (
    AdversaryActionBody,
    FlipBehavior,
    HealNode,
    InjectFault,
    ScheduledAdversary,
    SetLinkBehavior,
)
from repro.checks.schemas import schema
from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultType, LinkBehavior, NodeFault
from repro.faults.placement import forbidden_region

__all__ = [
    "DIRECTIVE_KINDS",
    "INJECTABLE_FAULT_TYPES",
    "FaultDirective",
    "FaultSchedule",
    "BUILTIN_GENERATORS",
]

#: Supported directive kinds (events first, generators after).
DIRECTIVE_KINDS = (
    "inject",
    "heal",
    "crash",
    "flip_behavior",
    "burst",
    "cluster",
    "intermittent_link",
    "mobile",
)

#: Fault types a schedule may inject (crash has its own directive kind).
INJECTABLE_FAULT_TYPES = (FaultType.BYZANTINE.value, FaultType.FAIL_SILENT.value)

#: Link behaviours an intermittent link may be forced to.
_LINK_BEHAVIOR_VALUES = (LinkBehavior.CONSTANT_ZERO.value, LinkBehavior.CONSTANT_ONE.value)

#: Schema tag written into serialized schedules.
SCHEMA = schema("fault-schedule")


def _canonical_node(value: Optional[Sequence[int]]) -> Optional[Tuple[int, int]]:
    if value is None:
        return None
    layer, column = value
    return (int(layer), int(column))


def _canonical_link(
    value: Optional[Sequence[Sequence[int]]],
) -> Optional[Tuple[Tuple[int, int], Tuple[int, int]]]:
    if value is None:
        return None
    source, destination = value
    return (_canonical_node(source), _canonical_node(destination))  # type: ignore[return-value]


@dataclass(frozen=True)
class FaultDirective:
    """One declarative entry of a :class:`FaultSchedule`.

    Only the fields relevant to the directive's ``kind`` are meaningful;
    validation rejects inconsistent combinations at construction.  ``node``
    (and the intermittent link's ``link``) may be ``None``, meaning "chosen
    uniformly at random -- under Condition 1 -- at materialization time from
    the run's seeded generator".

    Attributes
    ----------
    kind:
        One of :data:`DIRECTIVE_KINDS`.
    time:
        Simulation time of the event (start time for generators).
    node:
        Explicit target node; ``None`` for random placement.
    link:
        Explicit directed link of an ``intermittent_link`` directive.
    fault_type:
        ``"byzantine"`` or ``"fail_silent"`` for injecting directives.
    count:
        Number of faults of a ``burst`` / ``cluster``.
    radius:
        Hop radius of a ``cluster`` (cylindrical distance around the center).
    duration:
        Lifetime of injected faults; ``None`` means permanent.  For ``heal``
        directives the field is unused.
    period, duty, until:
        ``intermittent_link`` cycle: from ``time`` until ``until`` the link is
        stuck for ``duty * period`` out of every ``period``.
    interval, hops:
        ``mobile``: the fault relocates every ``interval`` for ``hops`` moves
        (``until``, if given, heals the final position).
    behavior:
        The stuck behaviour of an ``intermittent_link``.
    """

    kind: str
    time: float
    node: Optional[Tuple[int, int]] = None
    link: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None
    fault_type: str = FaultType.BYZANTINE.value
    count: int = 1
    radius: int = 2
    duration: Optional[float] = None
    period: Optional[float] = None
    duty: float = 0.5
    until: Optional[float] = None
    interval: Optional[float] = None
    hops: int = 0
    behavior: str = LinkBehavior.CONSTANT_ZERO.value

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        coerce(self, "kind", str(self.kind))
        coerce(self, "time", float(self.time))
        coerce(self, "node", _canonical_node(self.node))
        coerce(self, "link", _canonical_link(self.link))
        coerce(self, "fault_type", str(self.fault_type))
        if self.kind not in DIRECTIVE_KINDS:
            raise ValueError(
                f"unknown directive kind {self.kind!r}; expected one of {DIRECTIVE_KINDS}"
            )
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(f"directive time must be finite and non-negative, got {self.time}")
        if self.kind in ("inject", "burst", "cluster", "mobile"):
            if self.fault_type not in INJECTABLE_FAULT_TYPES:
                raise ValueError(
                    f"fault_type for {self.kind!r} must be one of "
                    f"{INJECTABLE_FAULT_TYPES}, got {self.fault_type!r}"
                )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind in ("burst", "cluster") and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind == "cluster" and self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.kind == "intermittent_link":
            if self.period is None or self.period <= 0:
                raise ValueError("intermittent_link needs a positive period")
            if not 0.0 < self.duty < 1.0:
                raise ValueError(f"duty must lie in (0, 1), got {self.duty}")
            if self.until is None or self.until <= self.time:
                raise ValueError("intermittent_link needs until > time")
            if self.behavior not in _LINK_BEHAVIOR_VALUES:
                raise ValueError(
                    f"behavior must be one of {_LINK_BEHAVIOR_VALUES}, got {self.behavior!r}"
                )
        if self.kind == "mobile":
            if self.interval is None or self.interval <= 0:
                raise ValueError("mobile needs a positive interval")
            if self.hops < 0:
                raise ValueError(f"hops must be >= 0, got {self.hops}")
            if self.until is not None and self.until <= self.time:
                raise ValueError("mobile until must exceed the start time")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (defaults omitted, tuples to lists)."""
        payload: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name not in ("kind", "time") and value == spec_field.default:
                continue
            if spec_field.name == "node" and value is not None:
                value = list(value)
            elif spec_field.name == "link" and value is not None:
                value = [list(value[0]), list(value[1])]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "FaultDirective":
        """Inverse of :meth:`to_json_dict` (unknown keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown FaultDirective fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """A named, ordered collection of fault directives.

    Attributes
    ----------
    directives:
        The directives; materialization resolves them in this order (which is
        also the order the run's generator is consumed in).
    label:
        Free-form tag shown in previews and reports.
    """

    directives: Tuple[FaultDirective, ...]
    label: str = ""

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        items: List[FaultDirective] = []
        raw = self.directives
        if isinstance(raw, FaultDirective):
            raw = (raw,)
        for item in raw:
            if isinstance(item, FaultDirective):
                items.append(item)
            elif isinstance(item, dict):
                items.append(FaultDirective.from_json_dict(item))
            else:
                raise TypeError(f"not a FaultDirective or mapping: {item!r}")
        if not items:
            raise ValueError("a fault schedule needs at least one directive")
        coerce(self, "directives", tuple(items))

    # ------------------------------------------------------------------
    # generators (the built-in schedule families)
    # ------------------------------------------------------------------
    @classmethod
    def burst(
        cls,
        time: float,
        count: int,
        fault_type: str = FaultType.BYZANTINE.value,
        duration: Optional[float] = None,
        label: str = "",
    ) -> "FaultSchedule":
        """``count`` simultaneous faults at ``time``, healed after ``duration``.

        Placement is uniform under Condition 1 at materialization time;
        ``duration=None`` makes the burst permanent.
        """
        directive = FaultDirective(
            kind="burst", time=time, count=count, fault_type=fault_type, duration=duration
        )
        return cls(directives=(directive,), label=label or f"burst-{count}")

    @classmethod
    def cluster(
        cls,
        time: float,
        count: int,
        radius: int = 3,
        fault_type: str = FaultType.BYZANTINE.value,
        duration: Optional[float] = None,
        label: str = "",
    ) -> "FaultSchedule":
        """Spatially-correlated faults within ``radius`` hops of a random center."""
        directive = FaultDirective(
            kind="cluster",
            time=time,
            count=count,
            radius=radius,
            fault_type=fault_type,
            duration=duration,
        )
        return cls(directives=(directive,), label=label or f"cluster-{count}r{radius}")

    @classmethod
    def intermittent_link(
        cls,
        time: float,
        period: float,
        until: float,
        duty: float = 0.5,
        link: Optional[Tuple[Tuple[int, int], Tuple[int, int]]] = None,
        behavior: str = LinkBehavior.CONSTANT_ZERO.value,
        label: str = "",
    ) -> "FaultSchedule":
        """One link toggling between correct and stuck with the given duty cycle."""
        directive = FaultDirective(
            kind="intermittent_link",
            time=time,
            period=period,
            duty=duty,
            until=until,
            link=link,
            behavior=behavior,
        )
        return cls(directives=(directive,), label=label or "intermittent-link")

    @classmethod
    def mobile_byzantine(
        cls,
        time: float,
        interval: float,
        hops: int,
        until: Optional[float] = None,
        fault_type: str = FaultType.BYZANTINE.value,
        label: str = "",
    ) -> "FaultSchedule":
        """A fault wandering to a random neighbouring node every ``interval``."""
        directive = FaultDirective(
            kind="mobile",
            time=time,
            interval=interval,
            hops=hops,
            until=until,
            fault_type=fault_type,
        )
        return cls(directives=(directive,), label=label or f"mobile-{hops}hops")

    # ------------------------------------------------------------------
    # serialization & hashing
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation of the whole schedule."""
        return {
            "schema": SCHEMA,
            "label": self.label,
            "directives": [directive.to_json_dict() for directive in self.directives],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        """Inverse of :meth:`to_json_dict`."""
        schema = payload.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise ValueError(f"unknown fault-schedule schema {schema!r}; expected {SCHEMA!r}")
        if "directives" not in payload:
            raise ValueError("fault schedule payload is missing 'directives'")
        return cls(
            directives=tuple(
                FaultDirective.from_json_dict(item) for item in payload["directives"]
            ),
            label=payload.get("label", ""),
        )

    def to_json(self) -> str:
        """Canonical JSON encoding."""
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Inverse of :meth:`to_json`."""
        return cls.from_json_dict(json.loads(text))

    def key(self, length: int = 32) -> str:
        """Content-address of the schedule (truncated SHA-256 of canonical JSON)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:length]

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        grid: HexGrid,
        rng: np.random.Generator,
        exclude: Iterable[NodeId] = (),
    ) -> ScheduledAdversary:
        """Resolve every random choice into a concrete timed action list.

        Parameters
        ----------
        grid:
            The grid the run executes on.
        rng:
            The run's seeded generator; consumed in directive order
            (placement first, then Byzantine behaviours, hop by hop for
            mobile faults).  Engines call this *after* the static fault
            model's draws, so schedule-free specs keep the historical stream.
        exclude:
            Nodes that must stay correct (the spec's static faults); random
            placements also respect their Condition 1 forbidden regions.

        Raises
        ------
        RuntimeError
            When no admissible placement exists (grid too crowded for the
            requested fault density under Condition 1).
        """
        static = {grid.validate_node(node) for node in exclude}
        # node -> (heal time, fault type) of schedule-injected faults; used to
        # keep later placements Condition-1-admissible against concurrently
        # active faults (best effort: overlap is judged against directive
        # times, which is exact for the built-in generators).
        active: Dict[NodeId, Tuple[float, str]] = {}
        actions: List[Tuple[float, AdversaryActionBody]] = []

        def blocked(at_time: float) -> Set[NodeId]:
            occupied = static | {
                node for node, (heal_time, _kind) in active.items() if heal_time > at_time
            }
            region: Set[NodeId] = set(occupied)
            for node in occupied:
                region |= forbidden_region(grid, node)
            return region

        def pick(candidates: Sequence[NodeId], what: str) -> NodeId:
            pool = sorted(candidates)
            if not pool:
                raise RuntimeError(
                    f"fault schedule {self.label or self.key(8)!r}: no admissible "
                    f"node left for {what} under Condition 1"
                )
            return pool[int(rng.integers(0, len(pool)))]

        def place(at_time: float, what: str) -> NodeId:
            banned = blocked(at_time)
            return pick(
                [node for node in grid.forwarding_nodes() if node not in banned], what
            )

        def make_fault(node: NodeId, fault_type: str) -> NodeFault:
            if fault_type == FaultType.BYZANTINE.value:
                return NodeFault.byzantine(grid, node, rng=rng)
            return NodeFault.fail_silent(grid, node)

        def drop_stale_heals(node: NodeId, after: float) -> None:
            # A heal queued by an earlier episode's `duration` must not outlive
            # that episode: once the node is healed early (or re-injected), a
            # later HealNode for it would silently end the *new* fault.
            actions[:] = [
                (at_time, action)
                for at_time, action in actions
                if not (
                    isinstance(action, HealNode)
                    and action.node == node
                    and at_time > after
                )
            ]

        def inject(
            at_time: float, node: NodeId, fault_type: str, heal_time: float
        ) -> None:
            drop_stale_heals(node, at_time)
            actions.append((at_time, InjectFault(make_fault(node, fault_type))))
            active[node] = (heal_time, fault_type)
            if math.isfinite(heal_time):
                actions.append((heal_time, HealNode(node)))

        for directive in self.directives:
            time = directive.time
            if directive.kind == "inject":
                node = directive.node if directive.node is not None else place(time, "inject")
                heal_time = time + directive.duration if directive.duration else math.inf
                inject(time, grid.validate_node(node), directive.fault_type, heal_time)
            elif directive.kind == "crash":
                node = directive.node if directive.node is not None else place(time, "crash")
                node = grid.validate_node(node)
                drop_stale_heals(node, time)
                actions.append(
                    (time, InjectFault(NodeFault.crash(grid, node, crash_time=time)))
                )
                heal_time = time + directive.duration if directive.duration else math.inf
                active[node] = (heal_time, FaultType.CRASH.value)
                if math.isfinite(heal_time):
                    actions.append((heal_time, HealNode(node)))
            elif directive.kind == "heal":
                if directive.node is not None:
                    targets = [grid.validate_node(directive.node)]
                else:
                    targets = sorted(
                        node
                        for node, (heal_time, _kind) in active.items()
                        if heal_time > time
                    )
                for node in targets:
                    drop_stale_heals(node, time)
                    actions.append((time, HealNode(node)))
                    if node in active:
                        active[node] = (time, active[node][1])
            elif directive.kind == "flip_behavior":
                if directive.node is not None:
                    targets = [grid.validate_node(directive.node)]
                else:
                    targets = sorted(
                        node
                        for node, (heal_time, kind) in active.items()
                        if heal_time > time and kind == FaultType.BYZANTINE.value
                    )
                for node in targets:
                    actions.append((time, FlipBehavior(node)))
            elif directive.kind == "burst":
                heal_time = time + directive.duration if directive.duration else math.inf
                for _ in range(directive.count):
                    node = place(time, "burst member")
                    inject(time, node, directive.fault_type, heal_time)
            elif directive.kind == "cluster":
                heal_time = time + directive.duration if directive.duration else math.inf
                center = place(time, "cluster center")
                inject(time, center, directive.fault_type, heal_time)
                for _ in range(directive.count - 1):
                    banned = blocked(time)
                    candidates = [
                        node
                        for node in grid.forwarding_nodes()
                        if node not in banned
                        and _cyl_distance(grid, node, center) <= directive.radius
                    ]
                    member = pick(candidates, f"cluster member near {center}")
                    inject(time, member, directive.fault_type, heal_time)
            elif directive.kind == "intermittent_link":
                link = directive.link
                if link is None:
                    links = sorted(
                        candidate
                        for candidate in grid.links()
                        if candidate[1][0] > 0
                    )
                    link = links[int(rng.integers(0, len(links)))]
                behavior = LinkBehavior(directive.behavior)
                assert directive.period is not None and directive.until is not None
                cycle_start = time
                while cycle_start < directive.until:
                    actions.append((cycle_start, SetLinkBehavior(link, behavior)))
                    off_time = min(
                        cycle_start + directive.duty * directive.period, directive.until
                    )
                    actions.append(
                        (off_time, SetLinkBehavior(link, LinkBehavior.CORRECT))
                    )
                    cycle_start += directive.period
            elif directive.kind == "mobile":
                assert directive.interval is not None
                end_time = directive.until if directive.until is not None else math.inf
                current = (
                    grid.validate_node(directive.node)
                    if directive.node is not None
                    else place(time, "mobile fault")
                )
                inject(time, current, directive.fault_type, math.inf)
                for hop in range(1, directive.hops + 1):
                    hop_time = time + hop * directive.interval
                    if hop_time >= end_time:
                        break
                    banned = blocked(hop_time) - {current}
                    neighbors = sorted(
                        {
                            node
                            for node in (
                                list(grid.out_neighbors(current).values())
                                + list(grid.in_neighbors(current).values())
                            )
                            if node[0] > 0 and node not in banned
                        }
                    )
                    actions.append((hop_time, HealNode(current)))
                    active[current] = (hop_time, directive.fault_type)
                    if neighbors:
                        current = neighbors[int(rng.integers(0, len(neighbors)))]
                    else:
                        current = place(hop_time, "mobile fault relocation")
                    inject(hop_time, current, directive.fault_type, math.inf)
                if math.isfinite(end_time):
                    actions.append((end_time, HealNode(current)))
                    active[current] = (end_time, directive.fault_type)
            else:  # pragma: no cover - unreachable after validation
                raise ValueError(f"unknown directive kind {directive.kind!r}")

        actions.sort(key=lambda pair: pair[0])  # stable: same-time keep insertion order
        return ScheduledAdversary(actions=tuple(actions))


def _cyl_distance(grid: HexGrid, a: NodeId, b: NodeId) -> int:
    """Topology-aware structural distance for the cluster radius.

    Delegates to the grid's own metric so cluster generators respect the
    boundary conditions (the patch has no column wrap, the torus also wraps
    the layer axis).  On the cylinder this is exactly the historical
    layer-difference-plus-ring-distance value.
    """
    return grid.node_distance(a, b)


#: Built-in generator families shown by ``hex-repro adversary list``:
#: name -> (factory, one-line description, example JSON arguments).
BUILTIN_GENERATORS = {
    "burst": (
        FaultSchedule.burst,
        "f simultaneous random faults at one time, optionally healed later",
        {"time": 100.0, "count": 3, "fault_type": "byzantine", "duration": 200.0},
    ),
    "cluster": (
        FaultSchedule.cluster,
        "spatially-correlated faults around a random center (Condition 1 aware)",
        {"time": 100.0, "count": 3, "radius": 3, "duration": 200.0},
    ),
    "intermittent_link": (
        FaultSchedule.intermittent_link,
        "one link toggling between correct and stuck with a duty cycle",
        {"time": 50.0, "period": 40.0, "duty": 0.5, "until": 250.0},
    ),
    "mobile_byzantine": (
        FaultSchedule.mobile_byzantine,
        "a Byzantine fault wandering to a neighbouring node every interval",
        {"time": 50.0, "interval": 60.0, "hops": 4, "until": 350.0},
    ),
}
