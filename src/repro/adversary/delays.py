"""Delay adversaries: per-message link delays chosen inside ``[d-, d+]``.

The paper's analysis quantifies over *every* admissible delay assignment: an
adversary may pick each message's delay anywhere in ``[d-, d+]``.  The stock
delay models (:mod:`repro.simulation.links`) only cover the benign random
choices (uniform per link or per message); the classes here implement hostile
strategies, all of which still respect the delay bounds -- HEX's guarantees
must hold against them, which is exactly what makes them useful workloads:

* :class:`MaxSkewDelays` -- a deterministic zig-zag-seeking adversary: links
  towards the left half of the ring are made as slow as possible and links
  towards the right half as fast as possible, driving neighbouring columns
  apart by ``epsilon`` per layer (the divergence pattern behind the zig-zag
  worst-case constructions of Figs. 5/17).  Delays are stable per link, so the
  analytic solver observes the same assignment as the simulator.

* :class:`BiasedLinkDelays` -- a per-link biased adversary: every link draws a
  persistent bias uniformly in ``[d-, d+]`` once (lazily, cached) and each
  message jitters around that bias within ``jitter * epsilon``, clipped to the
  bounds.  Models systematically mismatched wire lengths plus small dynamic
  noise; ``delay`` reports the stable bias (what the analytic solver sees),
  ``sample`` adds the per-message jitter (what the DES delivers).

Both are registered delay-model choices of :class:`repro.engines.base.RunSpec`
(``delay_model="max_skew"`` / ``"biased"``) and therefore sweepable campaign
axes.  Randomness flows exclusively from the run's seeded generator, in cache
order for the biased model -- the usual reproducibility contract.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.parameters import TimingConfig
from repro.core.topology import LinkId, NodeId
from repro.simulation.links import DelayModel

__all__ = ["MaxSkewDelays", "BiasedLinkDelays"]


class MaxSkewDelays(DelayModel):
    """Deterministic zig-zag-seeking adversary: slow left half, fast right half.

    For a destination column ``c`` of a width-``W`` grid, every link *into* the
    left half (``c < W // 2``) gets delay ``d+`` and every link into the right
    half gets ``d-``.  A pulse wave therefore arrives ever later on the left
    and ever earlier on the right, stretching the intra-layer skew by up to
    ``epsilon`` per layer until HEX's two-neighbour guards pull the halves back
    together -- the adversarial delay pattern the worst-case bounds (Lemma 5,
    Theorem 1) are fought against.

    The model is deterministic and stable (``sample == delay``), so it draws
    nothing from the run's generator and both execution engines observe the
    identical assignment.
    """

    def __init__(self, timing: TimingConfig, width: int) -> None:
        if width < 3:
            raise ValueError(f"width must be at least 3, got {width}")
        self._timing = timing
        self._width = int(width)

    @property
    def timing(self) -> TimingConfig:
        """The delay bounds the adversary chooses within."""
        return self._timing

    def delay(self, source: NodeId, destination: NodeId) -> float:
        if destination[1] < self._width // 2:
            return self._timing.d_max
        return self._timing.d_min

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"MaxSkewDelays([{self._timing.d_min}, {self._timing.d_max}], "
            f"width={self._width})"
        )


class BiasedLinkDelays(DelayModel):
    """Per-link biased adversary: persistent bias plus bounded per-message jitter.

    Each directed link lazily draws one bias uniformly in ``[d-, d+]`` (cached,
    like :class:`~repro.simulation.links.UniformRandomDelays`); every message
    on the link then jitters uniformly within ``+- jitter * epsilon`` around
    the bias, clipped to ``[d-, d+]``.  ``delay`` returns the stable bias,
    which is the assignment the analytic solver consumes.
    """

    def __init__(
        self, timing: TimingConfig, rng: np.random.Generator, jitter: float = 0.1
    ) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {jitter}")
        self._timing = timing
        self._rng = rng
        self._jitter = float(jitter)
        self._bias: Dict[LinkId, float] = {}

    @property
    def timing(self) -> TimingConfig:
        """The delay bounds the adversary chooses within."""
        return self._timing

    @property
    def jitter(self) -> float:
        """Per-message jitter amplitude as a fraction of ``epsilon``."""
        return self._jitter

    def delay(self, source: NodeId, destination: NodeId) -> float:
        key = (source, destination)
        value = self._bias.get(key)
        if value is None:
            value = float(self._rng.uniform(self._timing.d_min, self._timing.d_max))
            self._bias[key] = value
        return value

    def sample(self, source: NodeId, destination: NodeId) -> float:
        bias = self.delay(source, destination)
        if self._jitter == 0.0:
            return bias
        amplitude = self._jitter * self._timing.epsilon
        value = bias + float(self._rng.uniform(-amplitude, amplitude))
        return float(min(max(value, self._timing.d_min), self._timing.d_max))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BiasedLinkDelays([{self._timing.d_min}, {self._timing.d_max}], "
            f"jitter={self._jitter}, {len(self._bias)} cached)"
        )
