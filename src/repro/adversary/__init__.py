"""Dynamic adversaries: fault schedules, delay adversaries, recovery workloads.

This package is the layer between :mod:`repro.faults` (static fault models)
and :mod:`repro.engines` (execution backends).  It makes the *time axis* of
fault injection first class, which is what the paper's self-stabilization
claims are actually about:

* :mod:`repro.adversary.schedule` -- declarative, JSON-round-trippable
  :class:`FaultSchedule` objects: timed ``inject`` / ``heal`` / ``crash`` /
  ``flip_behavior`` events plus generators for bursts, spatially-correlated
  clusters, intermittent links and mobile Byzantine faults;
* :mod:`repro.adversary.runtime` -- the materialized
  :class:`ScheduledAdversary`: concrete, randomness-free timed actions the
  discrete-event network executes through its mutation hooks;
* :mod:`repro.adversary.delays` -- delay adversaries choosing per-message
  delays inside ``[d-, d+]`` (zig-zag-seeking :class:`MaxSkewDelays`,
  per-link :class:`BiasedLinkDelays`), available as ``RunSpec`` delay-model
  choices.

Schedules ride inside :class:`repro.engines.base.RunSpec`
(``fault_schedule=...``) and sweep as campaign axes; the DES engine executes
them natively while the solver and clock-tree backends reject them early with
a capability error (see ``EngineCapabilities.supports_fault_schedules``).
"""

from repro.adversary.delays import BiasedLinkDelays, MaxSkewDelays
from repro.adversary.runtime import (
    FlipBehavior,
    HealNode,
    InjectFault,
    ScheduledAdversary,
    SetLinkBehavior,
)
from repro.adversary.schedule import (
    BUILTIN_GENERATORS,
    DIRECTIVE_KINDS,
    FaultDirective,
    FaultSchedule,
)

__all__ = [
    "BUILTIN_GENERATORS",
    "DIRECTIVE_KINDS",
    "FaultDirective",
    "FaultSchedule",
    "ScheduledAdversary",
    "InjectFault",
    "HealNode",
    "FlipBehavior",
    "SetLinkBehavior",
    "MaxSkewDelays",
    "BiasedLinkDelays",
]
