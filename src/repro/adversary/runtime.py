"""Materialized adversaries: concrete timed mutations of a running network.

A :class:`~repro.adversary.schedule.FaultSchedule` is declarative; calling its
``materialize(grid, rng)`` resolves every random choice (placements under
Condition 1, Byzantine per-link behaviours, mobile-fault walks) into a
:class:`ScheduledAdversary` -- an ordered tuple of ``(time, action)`` pairs
whose actions are pure data and *consume no randomness at run time*.  The
discrete-event network schedules one
:class:`~repro.simulation.events.AdversaryAction` event per pair and, when the
event fires, calls ``action.apply(network, time)``; each action maps to one of
the network's public mutation hooks (``inject_node_fault``, ``heal_node``,
``flip_node_behavior``, ``set_link_behavior``).

Keeping all draws in the materialization step (which happens once, from the
run's seeded generator, in a documented order) is what makes schedule-driven
runs bit-for-bit reproducible across processes -- the same contract as every
other draw site in the code base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Protocol, Tuple

from repro.core.topology import LinkId, NodeId
from repro.faults.models import LinkBehavior, NodeFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.network import HexNetwork

__all__ = [
    "AdversaryActionBody",
    "InjectFault",
    "HealNode",
    "FlipBehavior",
    "SetLinkBehavior",
    "ScheduledAdversary",
]


class AdversaryActionBody(Protocol):
    """What the network expects of an installed adversary action."""

    def apply(self, network: "HexNetwork", time: float) -> None:
        """Mutate ``network`` at simulation time ``time``."""
        ...

    def describe(self) -> str:
        """One-line human-readable description (CLI preview)."""
        ...


@dataclass(frozen=True)
class InjectFault:
    """Make a node faulty from the action time on (inject / crash events).

    The concrete :class:`~repro.faults.models.NodeFault` -- including any
    randomly drawn Byzantine per-link behaviour and, for crash faults, the
    crash time equal to the action time -- was fixed at materialization.
    """

    fault: NodeFault

    def apply(self, network: "HexNetwork", time: float) -> None:
        network.inject_node_fault(self.fault, time)

    def describe(self) -> str:
        kind = self.fault.fault_type.value
        return f"inject {kind} fault at node {self.fault.node}"


@dataclass(frozen=True)
class HealNode:
    """Return a faulty node to correct behaviour (transient fault ends)."""

    node: NodeId

    def apply(self, network: "HexNetwork", time: float) -> None:
        network.heal_node(self.node, time)

    def describe(self) -> str:
        return f"heal node {self.node}"


@dataclass(frozen=True)
class FlipBehavior:
    """Toggle every outgoing-link behaviour of a Byzantine node (0 <-> 1)."""

    node: NodeId

    def apply(self, network: "HexNetwork", time: float) -> None:
        network.flip_node_behavior(self.node, time)

    def describe(self) -> str:
        return f"flip Byzantine behavior of node {self.node}"


@dataclass(frozen=True)
class SetLinkBehavior:
    """Force one directed link to a behaviour (intermittent-link events)."""

    link: LinkId
    behavior: LinkBehavior

    def apply(self, network: "HexNetwork", time: float) -> None:
        network.set_link_behavior(self.link, self.behavior, time)

    def describe(self) -> str:
        source, destination = self.link
        return f"set link {source}->{destination} to {self.behavior.value}"


@dataclass(frozen=True)
class ScheduledAdversary:
    """A fully-resolved adversary: time-ordered concrete actions.

    Produced by :meth:`repro.adversary.schedule.FaultSchedule.materialize`;
    installed into a network with :meth:`install` (the DES engine does this
    between ``initialize`` and pulse scheduling).  Same-time actions apply in
    tuple order, which materialization fixes deterministically (heals before
    injections of the same directive, directives in schedule order).
    """

    actions: Tuple[Tuple[float, AdversaryActionBody], ...]

    @property
    def num_actions(self) -> int:
        """Number of concrete timed actions."""
        return len(self.actions)

    @property
    def last_time(self) -> float:
        """Time of the final action (0.0 for an empty adversary)."""
        if not self.actions:
            return 0.0
        return max(time for time, _action in self.actions)

    def install(self, network: "HexNetwork") -> None:
        """Schedule every action as an event of ``network``'s queue."""
        network.install_adversary(self.actions)

    def describe(self) -> List[str]:
        """Human-readable timeline, one line per action (CLI preview)."""
        return [
            f"t={time:g}: {action.describe()}"
            for time, action in sorted(
                self.actions, key=lambda pair: pair[0]
            )
        ]
