"""Fault-locality analysis: h-hop exclusion zones and skew-vs-distance profiles.

Figs. 15 and 16 of the paper compare the skew statistics of faulty runs twice:
once over all correct nodes (``h = 0``) and once after additionally discarding
the *outgoing 1-hop neighbours* of the faulty nodes (``h = 1``).  The
observation is that with ``h = 1`` the fault effects essentially disappear,
i.e. HEX confines the damage of a fault to its immediate out-neighbourhood.

:func:`exclusion_mask` computes the set of nodes to discard for a given ``h``
(faulty nodes plus everything reachable from them via at most ``h`` outgoing
links); :func:`inclusion_mask` is its complement combined with the correctness
mask, ready to be passed to the skew statistics.  :func:`skew_vs_distance`
profiles the maximum intra-layer skew as a function of the hop distance from
the nearest fault, quantifying fault locality directly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.analysis.skew import intra_layer_skews
from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultModel

__all__ = ["excluded_nodes", "exclusion_mask", "inclusion_mask", "skew_vs_distance"]


def excluded_nodes(
    grid: HexGrid, faulty_nodes: Iterable[NodeId], hops: int
) -> Set[NodeId]:
    """Faulty nodes plus their outgoing ``<= hops``-hop neighbourhood.

    ``hops = 0`` returns the faulty nodes themselves; ``hops = 1`` additionally
    returns their direct out-neighbours (the ``h = 1`` data sets of
    Figs. 15/16), and so on via breadth-first search over outgoing links.
    """
    if hops < 0:
        raise ValueError(f"hops must be non-negative, got {hops}")
    start = {grid.validate_node(node) for node in faulty_nodes}
    result: Set[NodeId] = set(start)
    frontier = deque((node, 0) for node in sorted(start))
    while frontier:
        node, depth = frontier.popleft()
        if depth == hops:
            continue
        for neighbor in grid.out_neighbors(node).values():
            if neighbor not in result:
                result.add(neighbor)
                frontier.append((neighbor, depth + 1))
    return result


def exclusion_mask(
    grid: HexGrid, faulty_nodes: Iterable[NodeId], hops: int
) -> np.ndarray:
    """Boolean mask of shape ``(L + 1, W)``: ``True`` where the node is *excluded*."""
    mask = np.zeros(grid.shape, dtype=bool)
    for layer, column in excluded_nodes(grid, faulty_nodes, hops):
        mask[layer, column] = True
    return mask


def inclusion_mask(
    grid: HexGrid,
    fault_model: Optional[FaultModel],
    hops: int = 0,
) -> np.ndarray:
    """Mask of nodes to *include* in skew statistics.

    Combines the correctness mask of the fault model with the ``h``-hop
    exclusion zone around its faulty nodes.  With no fault model all nodes are
    included.
    """
    mask = np.ones(grid.shape, dtype=bool)
    if fault_model is None:
        return mask
    mask &= fault_model.correctness_mask()
    if hops > 0:
        mask &= ~exclusion_mask(grid, fault_model.faulty_nodes(), hops)
    else:
        mask &= ~exclusion_mask(grid, fault_model.faulty_nodes(), 0)
    return mask


def skew_vs_distance(
    grid: HexGrid,
    times: np.ndarray,
    fault_model: FaultModel,
    max_distance: int = 5,
) -> Dict[int, float]:
    """Maximum intra-layer skew as a function of the distance to the nearest fault.

    For every hop distance ``delta`` in ``0..max_distance`` the returned dict
    maps ``delta`` to the maximum intra-layer neighbour skew over all pairs
    whose *closer* endpoint is exactly ``delta`` hops (undirected) away from
    the nearest faulty node.  Entries without any valid pair carry ``nan``.

    This is the quantitative version of the paper's fault-locality claim:
    the profile should drop to the fault-free level within one or two hops.
    """
    faulty = fault_model.faulty_nodes()
    if not faulty:
        raise ValueError("skew_vs_distance requires at least one faulty node")
    wrap = bool(getattr(grid, "column_wrap", True))
    skews = intra_layer_skews(times, fault_model.correctness_mask(), wrap=wrap)

    # Distance of every node to the nearest faulty node (undirected hops).
    distance = np.full(grid.shape, np.inf)
    for node in grid.nodes():
        layer, column = node
        distance[layer, column] = min(grid.hop_distance(node, fault) for fault in faulty)

    result: Dict[int, float] = {}
    for delta in range(max_distance + 1):
        values: List[float] = []
        for layer in range(1, grid.layers + 1):
            for column in range(grid.width):
                value = skews[layer, column]
                if not np.isfinite(value):
                    continue
                right = (column + 1) % grid.width
                pair_distance = min(distance[layer, column], distance[layer, right])
                if pair_distance == delta:
                    values.append(float(value))
        result[delta] = float(np.max(values)) if values else float("nan")
    return result
