"""Post-processing and statistics substrate (the paper's Haskell framework).

* :mod:`repro.analysis.skew` -- intra-/inter-layer skew matrices, the
  ``sigma^op`` / ``sigma-hat^op`` aggregations of Section 4.1 and per-layer
  statistics (Fig. 12).
* :mod:`repro.analysis.traces` -- trigger-time matrices and pulse-wave series
  (Figs. 8, 9, 13, 14).
* :mod:`repro.analysis.histograms` -- cumulative skew histograms (Figs. 10, 11).
* :mod:`repro.analysis.locality` -- h-hop exclusion zones around faults
  (Figs. 15, 16) and fault-locality metrics.
* :mod:`repro.analysis.stabilization` -- pulse assignment and stabilization-time
  estimation for multi-pulse runs (Figs. 18, 19).
* :mod:`repro.analysis.streaming` -- post-hoc mirrors of the streaming soak
  telemetry, for streaming-vs-exact equivalence tests.
"""

from repro.analysis.histograms import cumulative_histogram, skew_histograms
from repro.analysis.locality import exclusion_mask, inclusion_mask, skew_vs_distance
from repro.analysis.skew import (
    SkewStatistics,
    aggregate,
    inter_layer_skews,
    intra_layer_skews,
    per_layer_inter_stats,
    per_layer_intra_stats,
)
from repro.analysis.stabilization import PulseAssignment, assign_pulses, stabilization_time
from repro.analysis.streaming import pulse_skew_series
from repro.analysis.traces import (
    event_trace_times,
    layer_series,
    load_event_trace,
    load_trace,
    save_trace,
    wave_rows,
)

__all__ = [
    "SkewStatistics",
    "intra_layer_skews",
    "inter_layer_skews",
    "aggregate",
    "per_layer_inter_stats",
    "per_layer_intra_stats",
    "cumulative_histogram",
    "skew_histograms",
    "exclusion_mask",
    "inclusion_mask",
    "skew_vs_distance",
    "PulseAssignment",
    "assign_pulses",
    "stabilization_time",
    "pulse_skew_series",
    "wave_rows",
    "layer_series",
    "save_trace",
    "load_trace",
    "load_event_trace",
    "event_trace_times",
]
