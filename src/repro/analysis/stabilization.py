"""Pulse assignment and stabilization-time estimation (Section 4.4).

The self-stabilization experiments start every node in an arbitrary state and
let the layer-0 sources generate a sequence of pulses.  Post-processing then

1. assigns each recorded firing to a pulse number (easy thanks to the large
   pulse separation ``S``: a firing belongs to pulse ``k`` if it falls into the
   window between the earliest layer-0 generation of pulse ``k`` and that of
   pulse ``k + 1``), and
2. estimates the *stabilization time* as the minimal pulse ``k`` such that from
   pulse ``k`` on every correct forwarding node fires exactly once per pulse
   and the per-layer intra- and inter-layer skews stay below the a-priori
   chosen bounds ``sigma(f, l)`` resp. ``sigma-hat(f, l) = sigma(f, l) + d+``.

The per-layer skew bound ``sigma(f, l)`` is parameterised by the paper's
``C in {0, 1, 2, 3}`` choices (see
:func:`repro.core.bounds.stable_skew_choice`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.analysis.skew import inter_layer_skews, intra_layer_skews
from repro.core.topology import HexGrid
from repro.simulation.runner import MultiPulseResult

__all__ = [
    "PulseAssignment",
    "assign_pulses",
    "pulse_skew_ok",
    "stabilization_time",
]


@dataclass
class PulseAssignment:
    """Firings of a multi-pulse run, binned by pulse number.

    Attributes
    ----------
    times:
        Array of shape ``(num_pulses, L + 1, W)``: the firing time assigned to
        each node for each pulse, or ``nan`` when the node did not fire exactly
        once within the pulse's window (faulty nodes are always ``nan``).
    counts:
        Integer array of the same shape: how many firings fell into the window
        (faulty nodes carry 0).
    window_starts:
        The window boundaries used for binning (length ``num_pulses``); window
        ``k`` is ``[window_starts[k], window_starts[k + 1])`` with the last
        window extending to infinity.
    """

    times: np.ndarray
    counts: np.ndarray
    window_starts: np.ndarray

    @property
    def num_pulses(self) -> int:
        """Number of pulses."""
        return int(self.times.shape[0])

    def spurious_firings_before_first_pulse(self) -> int:
        """Number of firings that occurred before the first pulse window.

        These stem from arbitrary initial states (nodes whose initial flags
        already satisfied a guard); they are not assigned to any pulse.
        """
        return int(self._early_firings)

    _early_firings: int = 0


def assign_pulses(result: MultiPulseResult) -> PulseAssignment:
    """Bin the firings of a multi-pulse run by pulse number.

    The window of pulse ``k`` starts at the earliest layer-0 generation time of
    pulse ``k`` (firings of layer-0 sources themselves are assigned by their
    scheduled pulse index, which is exact by construction).
    """
    grid: HexGrid = result.grid
    schedule = result.source_schedule
    num_pulses = schedule.shape[0]
    window_starts = np.array(
        [float(np.nanmin(schedule[k, :])) for k in range(num_pulses)], dtype=float
    )
    if not np.all(np.diff(window_starts) > 0):
        raise ValueError("source schedule windows are not strictly increasing")

    shape = (num_pulses, grid.layers + 1, grid.width)
    times = np.full(shape, np.nan, dtype=float)
    counts = np.zeros(shape, dtype=int)
    early = 0

    fault_model = result.fault_model
    for node, firings in result.firing_times.items():
        layer, column = node
        if fault_model is not None and fault_model.is_faulty(node):
            continue
        for fire_time in firings:
            if fire_time < window_starts[0]:
                early += 1
                continue
            pulse = int(np.searchsorted(window_starts, fire_time, side="right")) - 1
            counts[pulse, layer, column] += 1
            if counts[pulse, layer, column] == 1:
                times[pulse, layer, column] = fire_time
            else:
                # More than one firing in the window: ambiguous, drop the time.
                times[pulse, layer, column] = np.nan

    assignment = PulseAssignment(times=times, counts=counts, window_starts=window_starts)
    assignment._early_firings = early
    return assignment


def pulse_skew_ok(
    grid: HexGrid,
    pulse_times: np.ndarray,
    pulse_counts: np.ndarray,
    correct_mask: np.ndarray,
    intra_bound: Callable[[int], float],
    inter_bound: Callable[[int], float],
) -> bool:
    """Whether one pulse satisfies the per-layer skew bounds.

    Parameters
    ----------
    pulse_times, pulse_counts:
        The ``(L + 1, W)`` slices of a :class:`PulseAssignment` for one pulse.
    correct_mask:
        ``True`` where the node is correct.
    intra_bound, inter_bound:
        Per-layer bounds ``sigma(f, l)`` and ``sigma-hat(f, l)`` (callables of
        the layer index).

    A pulse qualifies if every correct forwarding node fired exactly once in
    the pulse window, every intra-layer neighbour skew of layer ``l`` is at
    most ``intra_bound(l)``, and every (absolute) inter-layer skew of layer
    ``l`` is at most ``inter_bound(l)``.
    """
    forwarding_mask = correct_mask.copy()
    forwarding_mask[0, :] = False
    if not np.all(pulse_counts[forwarding_mask] == 1):
        return False

    wrap = bool(getattr(grid, "column_wrap", True))
    intra = intra_layer_skews(pulse_times, correct_mask, wrap=wrap)
    inter = inter_layer_skews(pulse_times, correct_mask, wrap=wrap)
    for layer in range(1, grid.layers + 1):
        layer_intra = intra[layer, :]
        layer_intra = layer_intra[np.isfinite(layer_intra)]
        if layer_intra.size and float(layer_intra.max()) > intra_bound(layer) + 1e-9:
            return False
        layer_inter = np.abs(inter[layer, :, :].ravel())
        layer_inter = layer_inter[np.isfinite(layer_inter)]
        if layer_inter.size and float(layer_inter.max()) > inter_bound(layer) + 1e-9:
            return False
    return True


def stabilization_time(
    result: MultiPulseResult,
    intra_bound: Callable[[int], float],
    inter_bound: Optional[Callable[[int], float]] = None,
    assignment: Optional[PulseAssignment] = None,
) -> Optional[int]:
    """Estimate the stabilization time of a multi-pulse run.

    Parameters
    ----------
    result:
        The multi-pulse run.
    intra_bound:
        The per-layer stable-skew bound ``sigma(f, l)`` (callable of the layer).
    inter_bound:
        The per-layer inter-layer bound ``sigma-hat(f, l)``; defaults to
        ``sigma(f, l) + d+`` per Theorem 1's inter-layer relation.
    assignment:
        Re-use a precomputed :func:`assign_pulses` result.

    Returns
    -------
    Optional[int]
        The 1-based index of the first pulse from which on *all* observed
        pulses satisfy the bounds, or ``None`` if the run did not stabilize
        within the observed pulses.  A return value of 1 means the system was
        within bounds from the very first pulse, matching the paper's reading
        of Figs. 18/19.
    """
    if inter_bound is None:
        d_max = result.timing.d_max

        def inter_bound(layer: int, _d_max: float = d_max) -> float:  # type: ignore[misc]
            return intra_bound(layer) + _d_max

    if assignment is None:
        assignment = assign_pulses(result)
    grid = result.grid
    correct_mask = (
        result.fault_model.correctness_mask()
        if result.fault_model is not None
        else np.ones(grid.shape, dtype=bool)
    )
    # Structurally absent or unreachable nodes (degraded-topology holes and
    # the guard-deadlocked nodes above them) never fire and must not be
    # required to; the criterion judges the live part of the fabric.
    correct_mask &= grid.pulse_reachable_mask()

    ok = np.zeros(assignment.num_pulses, dtype=bool)
    for pulse in range(assignment.num_pulses):
        ok[pulse] = pulse_skew_ok(
            grid,
            assignment.times[pulse],
            assignment.counts[pulse],
            correct_mask,
            intra_bound,
            inter_bound,
        )
    # The stabilization time is the first pulse after the last violating pulse.
    violations = np.where(~ok)[0]
    if violations.size == 0:
        return 1
    first_stable = int(violations[-1]) + 1
    if first_stable >= assignment.num_pulses:
        return None
    return first_stable + 1
