"""Intra- and inter-layer skew statistics (Section 4.1, experiment type (A)).

The primary quantities of the paper's statistical evaluation are, for a
trigger-time matrix ``t`` of one run:

* the **intra-layer skews** ``|t_{l,i} - t_{l,i+1}|`` between same-layer
  neighbours (absolute values, because of the symmetry of the topology);
* the **inter-layer skews** ``t_{l,i} - t_{l-1,i}`` and
  ``t_{l,i} - t_{l-1,i+1}`` of every node relative to its two lower neighbours
  (signed, because the propagation direction induces a bias of at least ``d-``).

For an operator ``op`` in ``{min, q5, avg, q95, max}`` the paper aggregates
these per layer (``sigma^op_l`` / ``sigma-hat^op_l``), per run
(``sigma^op_rho``) and over whole simulation sets (``sigma^op``); the functions
here mirror that structure with nan-aware numpy reductions (faulty nodes and
never-triggered nodes are excluded by carrying ``nan``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "intra_layer_skews",
    "inter_layer_skews",
    "aggregate",
    "SkewStatistics",
    "per_layer_inter_stats",
    "per_layer_intra_stats",
    "collect_intra_values",
    "collect_inter_values",
]

#: Aggregation operators supported by :func:`aggregate`.
_OPERATORS = ("min", "q5", "avg", "q95", "max")


def _sanitize(times: np.ndarray, correct_mask: Optional[np.ndarray]) -> np.ndarray:
    """Replace non-finite entries and masked-out nodes by ``nan``."""
    clean = np.array(times, dtype=float, copy=True)
    clean[~np.isfinite(clean)] = np.nan
    if correct_mask is not None:
        if correct_mask.shape != clean.shape:
            raise ValueError(
                f"mask shape {correct_mask.shape} does not match times shape {clean.shape}"
            )
        clean[~correct_mask] = np.nan
    return clean


def intra_layer_skews(
    times: np.ndarray, correct_mask: Optional[np.ndarray] = None, wrap: bool = True
) -> np.ndarray:
    """Absolute skews between same-layer neighbours.

    Parameters
    ----------
    times:
        Trigger-time matrix of shape ``(L + 1, W)``; non-finite entries (faulty
        or never-triggered nodes) are ignored.
    correct_mask:
        Optional boolean mask of nodes to *include* (e.g. the correctness mask,
        possibly further restricted by the h-hop fault exclusion).
    wrap:
        Whether the column axis wraps.  ``False`` (the open-boundary patch
        topology) drops the ``(W-1, 0)`` pair: those columns are not
        neighbours, so their skew is not a defined quantity.

    Returns
    -------
    numpy.ndarray
        Shape ``(L + 1, W)``; entry ``[l, i]`` is ``|t_{l,i} - t_{l,i+1 mod W}|``
        or ``nan`` when either endpoint is excluded.  Layer 0 entries are
        included in the array; the aggregation helpers skip them.
    """
    clean = _sanitize(times, correct_mask)
    right = np.roll(clean, -1, axis=1)
    result = np.abs(clean - right)
    if not wrap:
        result[:, -1] = np.nan
    return result


def inter_layer_skews(
    times: np.ndarray, correct_mask: Optional[np.ndarray] = None, wrap: bool = True
) -> np.ndarray:
    """Signed skews of every node relative to its two lower-layer neighbours.

    ``wrap=False`` (open-boundary topologies) drops the lower-*right* skew of
    the last column, whose neighbour index would wrap to column 0.

    Returns
    -------
    numpy.ndarray
        Shape ``(L + 1, W, 2)``.  ``[l, i, 0] = t_{l,i} - t_{l-1,i}`` (lower
        left) and ``[l, i, 1] = t_{l,i} - t_{l-1,i+1 mod W}`` (lower right);
        the ``l = 0`` slice is all ``nan``.
    """
    clean = _sanitize(times, correct_mask)
    num_layers, width = clean.shape
    result = np.full((num_layers, width, 2), np.nan, dtype=float)
    below = clean[:-1, :]
    below_right = np.roll(clean[:-1, :], -1, axis=1)
    result[1:, :, 0] = clean[1:, :] - below
    result[1:, :, 1] = clean[1:, :] - below_right
    if not wrap:
        result[:, -1, 1] = np.nan
    return result


def aggregate(values: np.ndarray, op: str) -> float:
    """Nan-aware aggregation with the paper's operator names.

    ``op`` is one of ``min``, ``q5`` (5 % quantile), ``avg``, ``q95``
    (95 % quantile), ``max``.  Returns ``nan`` when no finite value remains.
    """
    data = np.asarray(values, dtype=float).ravel()
    data = data[np.isfinite(data)]
    if data.size == 0:
        return float("nan")
    if op == "min":
        return float(np.min(data))
    if op == "max":
        return float(np.max(data))
    if op == "avg":
        return float(np.mean(data))
    if op == "q5":
        return float(np.quantile(data, 0.05))
    if op == "q95":
        return float(np.quantile(data, 0.95))
    raise ValueError(f"unknown operator {op!r}; expected one of {_OPERATORS}")


def collect_intra_values(
    runs: Iterable[np.ndarray],
    masks: Optional[Iterable[Optional[np.ndarray]]] = None,
    skip_layer0: bool = True,
    wrap: bool = True,
) -> np.ndarray:
    """Pool all intra-layer skew samples of a set of runs into one flat array."""
    values: List[np.ndarray] = []
    masks_list = list(masks) if masks is not None else None
    for index, times in enumerate(runs):
        mask = masks_list[index] if masks_list is not None else None
        skews = intra_layer_skews(times, mask, wrap=wrap)
        if skip_layer0:
            skews = skews[1:, :]
        values.append(skews.ravel())
    if not values:
        return np.empty(0, dtype=float)
    pooled = np.concatenate(values)
    return pooled[np.isfinite(pooled)]


def collect_inter_values(
    runs: Iterable[np.ndarray],
    masks: Optional[Iterable[Optional[np.ndarray]]] = None,
    wrap: bool = True,
) -> np.ndarray:
    """Pool all inter-layer skew samples of a set of runs into one flat array."""
    values: List[np.ndarray] = []
    masks_list = list(masks) if masks is not None else None
    for index, times in enumerate(runs):
        mask = masks_list[index] if masks_list is not None else None
        skews = inter_layer_skews(times, mask, wrap=wrap)
        values.append(skews[1:, :, :].ravel())
    if not values:
        return np.empty(0, dtype=float)
    pooled = np.concatenate(values)
    return pooled[np.isfinite(pooled)]


@dataclass(frozen=True)
class SkewStatistics:
    """One row of Table 1 / Table 2: aggregated intra- and inter-layer skews.

    Attributes are named after the paper's operators: the intra-layer skew is
    summarised by average, 95 %-quantile and maximum of the absolute values;
    the inter-layer skew additionally by minimum and 5 %-quantile of the signed
    values (its bias makes the lower tail informative).
    """

    intra_avg: float
    intra_q95: float
    intra_max: float
    inter_min: float
    inter_q5: float
    inter_avg: float
    inter_q95: float
    inter_max: float
    num_runs: int = 1

    @classmethod
    def from_values(
        cls, intra_values: np.ndarray, inter_values: np.ndarray, num_runs: int = 1
    ) -> "SkewStatistics":
        """Aggregate pooled intra-/inter-layer samples into one statistics row."""
        return cls(
            intra_avg=aggregate(intra_values, "avg"),
            intra_q95=aggregate(intra_values, "q95"),
            intra_max=aggregate(intra_values, "max"),
            inter_min=aggregate(inter_values, "min"),
            inter_q5=aggregate(inter_values, "q5"),
            inter_avg=aggregate(inter_values, "avg"),
            inter_q95=aggregate(inter_values, "q95"),
            inter_max=aggregate(inter_values, "max"),
            num_runs=num_runs,
        )

    @classmethod
    def from_times(
        cls,
        times: np.ndarray,
        correct_mask: Optional[np.ndarray] = None,
        wrap: bool = True,
    ) -> "SkewStatistics":
        """Statistics of a single run."""
        return cls.from_runs([times], [correct_mask], wrap=wrap)

    @classmethod
    def from_runs(
        cls,
        runs: Sequence[np.ndarray],
        masks: Optional[Sequence[Optional[np.ndarray]]] = None,
        wrap: bool = True,
    ) -> "SkewStatistics":
        """Statistics pooled over a whole simulation set ``R`` of runs.

        ``wrap=False`` drops the wrap-around column pair (open-boundary
        topologies; see :func:`intra_layer_skews`).
        """
        intra = collect_intra_values(runs, masks, wrap=wrap)
        inter = collect_inter_values(runs, masks, wrap=wrap)
        return cls.from_values(intra, inter, num_runs=len(runs))

    def as_row(self) -> Dict[str, float]:
        """The statistics as an ordered Table 1-style row dictionary."""
        return {
            "intra_avg": self.intra_avg,
            "intra_q95": self.intra_q95,
            "intra_max": self.intra_max,
            "inter_min": self.inter_min,
            "inter_q5": self.inter_q5,
            "inter_avg": self.inter_avg,
            "inter_q95": self.inter_q95,
            "inter_max": self.inter_max,
        }


def per_layer_inter_stats(
    runs: Sequence[np.ndarray],
    masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    max_layer: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Per-layer inter-layer skew statistics over a run set (Fig. 12).

    Returns
    -------
    dict
        Keys ``"layer"``, ``"min"``, ``"avg"``, ``"max"``, ``"std"``,
        ``"q5"``, ``"q95"``; each an array indexed by layer ``1..max_layer``.
        The ``min``/``max``/``avg`` series are the *averages over runs* of the
        per-run, per-layer minimum/maximum/average (matching the paper's plots,
        which show per-layer averages with standard deviations over the runs);
        ``std`` is the standard deviation over runs of the per-run maximum.
    """
    if not runs:
        raise ValueError("at least one run is required")
    num_layers = runs[0].shape[0]
    top = num_layers - 1 if max_layer is None else min(max_layer, num_layers - 1)
    layers = np.arange(1, top + 1)
    per_run_min = np.full((len(runs), layers.size), np.nan)
    per_run_avg = np.full((len(runs), layers.size), np.nan)
    per_run_max = np.full((len(runs), layers.size), np.nan)
    per_run_q5 = np.full((len(runs), layers.size), np.nan)
    per_run_q95 = np.full((len(runs), layers.size), np.nan)
    for run_index, times in enumerate(runs):
        mask = masks[run_index] if masks is not None else None
        skews = inter_layer_skews(times, mask)
        for layer_pos, layer in enumerate(layers):
            values = skews[layer, :, :].ravel()
            values = values[np.isfinite(values)]
            if values.size == 0:
                continue
            per_run_min[run_index, layer_pos] = values.min()
            per_run_avg[run_index, layer_pos] = values.mean()
            per_run_max[run_index, layer_pos] = values.max()
            per_run_q5[run_index, layer_pos] = np.quantile(values, 0.05)
            per_run_q95[run_index, layer_pos] = np.quantile(values, 0.95)
    return {
        "layer": layers,
        "min": np.nanmean(per_run_min, axis=0),
        "avg": np.nanmean(per_run_avg, axis=0),
        "max": np.nanmean(per_run_max, axis=0),
        "std": np.nanstd(per_run_max, axis=0),
        "q5": np.nanmean(per_run_q5, axis=0),
        "q95": np.nanmean(per_run_q95, axis=0),
    }


def per_layer_intra_stats(
    runs: Sequence[np.ndarray],
    masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    max_layer: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Per-layer intra-layer skew statistics over a run set.

    Same structure as :func:`per_layer_inter_stats` but for the absolute
    intra-layer skews (used to study how quickly large layer-0 skews are
    smoothed out, cf. Lemma 3 and Fig. 12's discussion).
    """
    if not runs:
        raise ValueError("at least one run is required")
    num_layers = runs[0].shape[0]
    top = num_layers - 1 if max_layer is None else min(max_layer, num_layers - 1)
    layers = np.arange(1, top + 1)
    per_run_avg = np.full((len(runs), layers.size), np.nan)
    per_run_max = np.full((len(runs), layers.size), np.nan)
    for run_index, times in enumerate(runs):
        mask = masks[run_index] if masks is not None else None
        skews = intra_layer_skews(times, mask)
        for layer_pos, layer in enumerate(layers):
            values = skews[layer, :]
            values = values[np.isfinite(values)]
            if values.size == 0:
                continue
            per_run_avg[run_index, layer_pos] = values.mean()
            per_run_max[run_index, layer_pos] = values.max()
    return {
        "layer": layers,
        "avg": np.nanmean(per_run_avg, axis=0),
        "max": np.nanmean(per_run_max, axis=0),
        "std": np.nanstd(per_run_max, axis=0),
    }
