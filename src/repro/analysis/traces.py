"""Trigger-time traces and pulse-wave series (Figs. 8, 9, 13, 14).

The 3D wave plots of the paper show, for one run, the firing time ``t_{l,i}``
of every node over the ``(layer, column)`` plane.  This module provides the
small data-wrangling helpers needed to regenerate those series without any
plotting dependency: flat row dumps (for CSV export / external plotting),
per-layer series, and ``.npz`` persistence of whole run sets.

Captured DES event traces (``hex-repro simulate --trace run.jsonl
--trace-events``) feed the same pipeline: :func:`load_event_trace` filters
the per-event records out of a ``repro.obs`` trace file, and
:func:`event_trace_times` reconstructs the first-firing matrix those events
imply, ready for :func:`wave_rows` / :func:`save_trace`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "wave_rows",
    "layer_series",
    "save_trace",
    "load_trace",
    "load_event_trace",
    "event_trace_times",
]


def wave_rows(
    times: np.ndarray, truncate_layers: Optional[int] = None
) -> List[Dict[str, float]]:
    """Flatten a trigger-time matrix into plottable rows.

    Parameters
    ----------
    times:
        Trigger-time matrix of shape ``(L + 1, W)``.
    truncate_layers:
        Only emit layers ``0..truncate_layers`` (the paper truncates its wave
        plots to the first 30 layers for readability).

    Returns
    -------
    list of dict
        One dict per node with keys ``layer``, ``column``, ``time`` (``time``
        is ``nan`` for faulty / never-triggered nodes).
    """
    times = np.asarray(times, dtype=float)
    num_layers, width = times.shape
    top = num_layers if truncate_layers is None else min(truncate_layers + 1, num_layers)
    rows: List[Dict[str, float]] = []
    for layer in range(top):
        for column in range(width):
            value = times[layer, column]
            rows.append(
                {
                    "layer": float(layer),
                    "column": float(column),
                    "time": float(value) if np.isfinite(value) else float("nan"),
                }
            )
    return rows


def layer_series(times: np.ndarray, layer: int) -> np.ndarray:
    """The firing times of one layer (a single "ridge" of the wave plot)."""
    times = np.asarray(times, dtype=float)
    if not 0 <= layer < times.shape[0]:
        raise ValueError(f"layer {layer} out of range [0, {times.shape[0] - 1}]")
    return times[layer, :].copy()


def save_trace(
    path: Union[str, Path],
    times: Union[np.ndarray, Sequence[np.ndarray]],
    metadata: Optional[Dict[str, Union[str, float, int]]] = None,
) -> Path:
    """Persist one trigger-time matrix (or a run set of them) as ``.npz``.

    Parameters
    ----------
    path:
        Destination file; the ``.npz`` suffix is added if missing.
    times:
        A single ``(L + 1, W)`` matrix or a sequence of them (stacked into a
        3D array ``(runs, L + 1, W)``).
    metadata:
        Optional scalar metadata stored alongside the data.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    stacked = np.asarray(times, dtype=float)
    payload: Dict[str, np.ndarray] = {"times": stacked}
    if metadata:
        for key, value in metadata.items():
            payload[f"meta_{key}"] = np.asarray(value)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_trace(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load a trace saved by :func:`save_trace`.

    Returns a dict with the ``times`` array and any ``meta_*`` entries.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def load_event_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load the captured DES events from a ``repro.obs`` trace file.

    The file is the JSONL artifact of ``--trace run.jsonl --trace-events``
    (schema ``hex-repro/trace/v1``); span records are dropped and each
    returned dict is the flattened event payload -- ``kind`` plus the
    kind-specific fields (``node``, ``time``, ``pulse_index``, ...) --
    ordered as simulated.

    Raises ``ValueError`` when the file is not a trace artifact or carries
    no captured DES events (tracing without ``--trace-events`` records spans
    only).
    """
    from repro.obs import load_trace_records  # repro: allow-import[lazy loader for obs trace artifacts; analysis stays obs-free at import time]

    events: List[Dict[str, Any]] = []
    for record in load_trace_records(path):
        if record.get("type") != "event" or record.get("name") != "des.event":
            continue
        attrs = dict(record.get("attrs", {}))
        events.append(attrs)
    if not events:
        raise ValueError(
            f"{path}: trace contains no captured DES events "
            "(was the run traced with --trace-events?)"
        )
    return events


def event_trace_times(
    events: Sequence[Dict[str, Any]], layers: int, width: int
) -> np.ndarray:
    """First-firing matrix implied by a captured event stream.

    A thin re-export of :func:`repro.obs.first_firing_matrix_from_events`
    so analysis code reconstructs ``(L + 1, W)`` trigger-time matrices --
    the input of :func:`wave_rows` and :func:`save_trace` -- without
    importing the observability package directly.
    """
    from repro.obs import first_firing_matrix_from_events  # repro: allow-import[lazy loader for obs trace artifacts; analysis stays obs-free at import time]

    return first_firing_matrix_from_events(events, layers, width)
