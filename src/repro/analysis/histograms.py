"""Cumulative skew histograms (Figs. 10 and 11).

The paper presents "cumulated skew histograms" over all nodes and all runs of a
scenario: a histogram of the intra-layer skews and one of the inter-layer
skews, pooled over the whole simulation set.  The observation of interest is a
sharp concentration with an exponential tail (scenario (i)-(iii)) and an extra
cluster near the end of the tail in scenario (iv) caused by the large initial
skews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.skew import collect_inter_values, collect_intra_values

__all__ = ["Histogram", "cumulative_histogram", "skew_histograms", "tail_fraction"]


@dataclass(frozen=True)
class Histogram:
    """A simple fixed-bin histogram.

    Attributes
    ----------
    edges:
        Bin edges of length ``num_bins + 1``.
    counts:
        Bin counts of length ``num_bins``.
    """

    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        """Total number of samples."""
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Bin centres."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def normalized(self) -> np.ndarray:
        """Counts normalised to relative frequencies."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total

    def cumulative(self) -> np.ndarray:
        """Cumulative relative frequencies (empirical CDF at the bin edges)."""
        return np.cumsum(self.normalized())


def cumulative_histogram(
    values: np.ndarray,
    bin_width: float = 0.25,
    value_range: Optional[Tuple[float, float]] = None,
) -> Histogram:
    """Histogram of a pooled sample with fixed-width bins.

    Parameters
    ----------
    values:
        The pooled samples; non-finite entries are dropped.
    bin_width:
        Width of each bin (the paper's plots use sub-nanosecond bins).
    value_range:
        Optional ``(low, high)``; defaults to the sample range, expanded to a
        whole number of bins.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    data = np.asarray(values, dtype=float).ravel()
    data = data[np.isfinite(data)]
    if data.size == 0:
        edges = np.array([0.0, bin_width])
        return Histogram(edges=edges, counts=np.zeros(1, dtype=int))
    if value_range is None:
        low = np.floor(data.min() / bin_width) * bin_width
        high = np.ceil(data.max() / bin_width) * bin_width
        if high <= low:
            high = low + bin_width
    else:
        low, high = value_range
        if high <= low:
            raise ValueError(f"invalid value_range {value_range}")
    num_bins = int(np.ceil((high - low) / bin_width))
    edges = low + np.arange(num_bins + 1) * bin_width
    counts, _ = np.histogram(data, bins=edges)
    return Histogram(edges=edges, counts=counts.astype(int))


def skew_histograms(
    runs: Sequence[np.ndarray],
    masks: Optional[Sequence[Optional[np.ndarray]]] = None,
    bin_width: float = 0.25,
) -> Dict[str, Histogram]:
    """The Fig. 10/11 pair of histograms for a run set.

    Returns
    -------
    dict
        ``{"intra": Histogram, "inter": Histogram}`` pooled over all nodes,
        layers (> 0) and runs.
    """
    intra = collect_intra_values(runs, masks)
    inter = collect_inter_values(runs, masks)
    return {
        "intra": cumulative_histogram(intra, bin_width=bin_width),
        "inter": cumulative_histogram(inter, bin_width=bin_width),
    }


def tail_fraction(values: np.ndarray, threshold: float) -> float:
    """Fraction of samples strictly above a threshold (tail mass).

    Used to quantify the "exponential tail" observation and the extra cluster
    of scenario (iv): e.g. the fraction of intra-layer skews above ``d+``.
    """
    data = np.asarray(values, dtype=float).ravel()
    data = data[np.isfinite(data)]
    if data.size == 0:
        return 0.0
    return float(np.mean(data > threshold))
