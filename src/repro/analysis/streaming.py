"""Post-hoc equivalence helpers for streaming soak telemetry.

The soak runner (:mod:`repro.experiments.soak`) computes per-pulse skew
*incrementally* -- each firing updates bounded per-window min/max/count
accumulators and the trace is discarded.  This module recomputes the same
series *post hoc* from a retained :class:`~repro.engines.base.RunResult`
trace, so tests can assert the streaming pipeline agrees exactly with the
classical trace-array pipeline on runs small enough to keep both.

The mirrored definition, shared with ``SoakObserver``:

* only forwarding layers (``1 .. L``) participate; layer-0 source firings
  are excluded;
* firings of faulty nodes are excluded (on fault-free runs the two
  pipelines agree exactly; under mid-run churn the post-hoc trace also
  contains a healed node's *while-faulty* firings, which the live observer
  rightly skipped -- so equivalence is only claimed fault-free);
* each firing is assigned to pulse window ``k`` when it falls in
  ``[window_starts[k], window_starts[k + 1])``, the
  :func:`repro.analysis.stabilization.assign_pulses` rule, with the last
  window extending to infinity;
* the skew of window ``k`` is the maximum over layers with at least two
  observed firings of ``max - min`` within the layer, or ``nan`` when no
  layer has two.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.runner import MultiPulseResult

__all__ = ["pulse_skew_series"]


def pulse_skew_series(result: MultiPulseResult) -> np.ndarray:
    """Per-pulse max intra-layer firing spread of a multi-pulse run.

    Returns an array of length ``num_pulses``: entry ``k`` is the largest
    ``max - min`` firing-time spread across forwarding layers with at least
    two firings in pulse window ``k``, or ``nan`` when no layer qualifies.
    """
    grid = result.grid
    schedule = result.source_schedule
    num_pulses = int(schedule.shape[0])
    window_starts = np.array(
        [float(np.nanmin(schedule[k, :])) for k in range(num_pulses)], dtype=float
    )
    if not np.all(np.diff(window_starts) > 0):
        raise ValueError("source schedule windows are not strictly increasing")

    shape = (num_pulses, grid.layers + 1)
    mins = np.full(shape, np.inf, dtype=float)
    maxs = np.full(shape, -np.inf, dtype=float)
    counts = np.zeros(shape, dtype=np.int64)

    fault_model = result.fault_model
    for node, firings in result.firing_times.items():
        layer, _ = node
        if layer == 0:
            continue
        if fault_model is not None and fault_model.is_faulty(node):
            continue
        for fire_time in firings:
            if fire_time < window_starts[0]:
                continue
            window = int(np.searchsorted(window_starts, fire_time, side="right")) - 1
            counts[window, layer] += 1
            if fire_time < mins[window, layer]:
                mins[window, layer] = fire_time
            if fire_time > maxs[window, layer]:
                maxs[window, layer] = fire_time

    series = np.full(num_pulses, np.nan, dtype=float)
    for window in range(num_pulses):
        eligible = counts[window] >= 2
        if eligible.any():
            series[window] = float(np.max(maxs[window][eligible] - mins[window][eligible]))
    return series
