"""Circular embedding with doubling layers (Fig. 21).

The alternative topology sketched in Section 5 arranges the nodes of each layer
on concentric rings around the clock sources in the centre.  Because the ring
circumference grows with the radius, keeping the node pitch roughly constant
requires *doubling layers* in which every node of the previous ring drives two
nodes of the next; doubling layers become less frequent as the radius (and thus
the number of nodes per ring) grows.

The paper leaves the skew analysis of this variant to future work; what it uses
the construction for is the embedding argument -- link lengths stay nearly
uniform and the whole structure routes on two interconnect layers.  This module
therefore provides the *geometric* model: ring radii, node positions, the
HEX-like link structure between consecutive rings (including the modified links
at doubling layers), and wire-length statistics comparable to those of the
flattened embedding and the H-tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["DoublingLayout", "build_doubling_layout"]

#: A node of the circular layout: (ring index, position index on the ring).
RingNodeId = Tuple[int, int]


@dataclass
class DoublingLayout:
    """A circular HEX-like layout with doubling layers.

    Attributes
    ----------
    ring_sizes:
        Number of nodes on each ring (ring 0 = clock sources in the centre).
    doubling_rings:
        Indices of rings whose node count is double that of the previous ring.
    positions:
        Physical ``(x, y)`` coordinates of every node.
    links:
        Directed links ``(source, destination)`` from each ring to the next
        (two out-links per node, as in HEX) plus the intra-ring links.
    """

    ring_sizes: List[int]
    doubling_rings: List[int]
    positions: Dict[RingNodeId, Tuple[float, float]] = field(default_factory=dict)
    links: List[Tuple[RingNodeId, RingNodeId]] = field(default_factory=list)

    @property
    def num_rings(self) -> int:
        """Number of rings (including the source ring)."""
        return len(self.ring_sizes)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return sum(self.ring_sizes)

    def link_lengths(self) -> np.ndarray:
        """Euclidean lengths of all links."""
        lengths = []
        for source, destination in self.links:
            sx, sy = self.positions[source]
            dx, dy = self.positions[destination]
            lengths.append(math.hypot(dx - sx, dy - sy))
        return np.asarray(lengths, dtype=float)

    def wire_length_stats(self) -> Dict[str, float]:
        """Max/avg/min link length and their ratio (delay-balance figure of merit)."""
        lengths = self.link_lengths()
        return {
            "max_link_length": float(lengths.max()),
            "avg_link_length": float(lengths.mean()),
            "min_link_length": float(lengths.min()),
            "length_ratio": float(lengths.max() / lengths.min()),
        }


def build_doubling_layout(
    num_rings: int,
    initial_ring_size: int = 4,
    target_pitch: float = 1.0,
    max_ring_size: Optional[int] = None,
) -> DoublingLayout:
    """Build a circular doubling-layer layout.

    Parameters
    ----------
    num_rings:
        Number of rings (>= 2).
    initial_ring_size:
        Number of clock sources on the innermost ring (>= 3).
    target_pitch:
        Desired arc distance between adjacent nodes of a ring; a ring is
        doubled whenever its arc pitch would otherwise exceed twice the target.
    max_ring_size:
        Optional cap on the ring size (doubling stops once reached).

    Returns
    -------
    DoublingLayout
        Ring sizes, the rings at which doubling happened, node positions and
        the link structure: every node of ring ``r`` has two out-links to ring
        ``r + 1`` (its "upper-left"/"upper-right" counterparts; at doubling
        rings these are its two copies), plus intra-ring left/right links.
    """
    if num_rings < 2:
        raise ValueError("num_rings must be >= 2")
    if initial_ring_size < 3:
        raise ValueError("initial_ring_size must be >= 3")
    if target_pitch <= 0:
        raise ValueError("target_pitch must be positive")

    ring_sizes = [initial_ring_size]
    doubling_rings: List[int] = []
    for ring in range(1, num_rings):
        previous = ring_sizes[-1]
        radius = ring * target_pitch + initial_ring_size * target_pitch / (2 * math.pi)
        circumference = 2.0 * math.pi * radius
        size = previous
        if circumference / previous > 2.0 * target_pitch and (
            max_ring_size is None or previous * 2 <= max_ring_size
        ):
            size = previous * 2
            doubling_rings.append(ring)
        ring_sizes.append(size)

    layout = DoublingLayout(ring_sizes=ring_sizes, doubling_rings=doubling_rings)

    # Node positions: ring r at radius proportional to r, nodes evenly spread.
    base_radius = initial_ring_size * target_pitch / (2.0 * math.pi)
    for ring, size in enumerate(ring_sizes):
        radius = base_radius + ring * target_pitch
        for index in range(size):
            angle = 2.0 * math.pi * index / size
            layout.positions[(ring, index)] = (
                radius * math.cos(angle),
                radius * math.sin(angle),
            )

    # Intra-ring links (left/right neighbours), for rings > 0 as in HEX.
    for ring in range(1, num_rings):
        size = ring_sizes[ring]
        for index in range(size):
            layout.links.append(((ring, index), (ring, (index + 1) % size)))
            layout.links.append(((ring, index), (ring, (index - 1) % size)))

    # Inter-ring links: each node of ring r drives two nodes of ring r + 1.
    for ring in range(num_rings - 1):
        size = ring_sizes[ring]
        next_size = ring_sizes[ring + 1]
        doubled = next_size == 2 * size
        for index in range(size):
            if doubled:
                targets = (2 * index, (2 * index + 1) % next_size)
            else:
                targets = (index, (index + 1) % next_size)
            for target in targets:
                layout.links.append(((ring, index), (ring + 1, target)))

    return layout
