"""Physical embedding of the HEX grid (Section 5).

The HEX topology is a cylinder, so embedding it on a planar die requires some
care.  The paper discusses two options:

* flattening the cylinder onto two interconnect layers (simple, but nodes from
  opposite sides of the cylinder end up physically close while being far apart
  in the grid);
* a circular arrangement with *doubling layers* (Fig. 21) that keeps link
  lengths nearly uniform and is easy to route on two layers.

* :mod:`repro.embedding.planar` -- the flattened-cylinder embedding with wire
  length and grid-vs-physical distance statistics.
* :mod:`repro.embedding.doubling` -- the circular doubling-layer layout.
"""

from repro.embedding.doubling import DoublingLayout, build_doubling_layout
from repro.embedding.planar import FlattenedEmbedding, planar_wire_length_stats

__all__ = [
    "FlattenedEmbedding",
    "planar_wire_length_stats",
    "DoublingLayout",
    "build_doubling_layout",
]
