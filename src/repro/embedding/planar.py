"""Flattened-cylinder embedding of the HEX grid.

"The presented topology can be embedded into a VLSI circuit using two
interconnect layers: One simply squeezes the cylindric shape of the HEX grid
flat."  The flattening places the front half of the cylinder (columns
``0 .. W/2 - 1``) and the mirrored back half (columns ``W/2 .. W - 1``) on top
of each other with a small vertical offset; links within each half stay short,
the two fold columns connect the halves, and nodes from opposite halves become
physically close although they are up to ``W/2`` grid hops apart -- the
drawback the paper points out.

:class:`FlattenedEmbedding` computes node coordinates and per-link wire
lengths; :func:`planar_wire_length_stats` summarises them (max/avg length,
ratio to the sink pitch) and reports the grid-distance of the physically
closest node pairs from opposite halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.topology import HexGrid, LinkId, NodeId

__all__ = ["FlattenedEmbedding", "planar_wire_length_stats"]


@dataclass
class FlattenedEmbedding:
    """Coordinates of a flattened (two-interconnect-layer) HEX cylinder.

    Parameters
    ----------
    grid:
        The HEX grid to embed.
    pitch:
        Horizontal distance between adjacent columns of the same half (the
        "sink pitch"; 1.0 by default).
    layer_pitch:
        Vertical distance between adjacent layers.
    fold_offset:
        Lateral offset between the front and the back half (models the two
        interconnect layers / a slight stagger; small compared to the pitch).
    """

    grid: HexGrid
    pitch: float = 1.0
    layer_pitch: float = 1.0
    fold_offset: float = 0.25

    def __post_init__(self) -> None:
        if self.pitch <= 0 or self.layer_pitch <= 0:
            raise ValueError("pitch and layer_pitch must be positive")
        if self.fold_offset < 0:
            raise ValueError("fold_offset must be non-negative")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def is_back_half(self, column: int) -> bool:
        """Whether a column lies on the folded-back half of the cylinder."""
        return column >= self.grid.width // 2 + self.grid.width % 2

    def position(self, node: NodeId) -> Tuple[float, float]:
        """Physical ``(x, y)`` position of a node."""
        layer, column = self.grid.validate_node(node)
        width = self.grid.width
        front_count = width // 2 + width % 2
        if column < front_count:
            x = column * self.pitch
        else:
            # Back half: mirrored so that column W-1 sits under column 0.
            x = (width - 1 - column) * self.pitch + self.fold_offset
        y = layer * self.layer_pitch
        return (x, y)

    def link_length(self, source: NodeId, destination: NodeId) -> float:
        """Euclidean wire length of a directed link."""
        sx, sy = self.position(source)
        dx, dy = self.position(destination)
        return math.hypot(dx - sx, dy - sy)

    def all_link_lengths(self) -> Dict[LinkId, float]:
        """Wire lengths of every directed link of the grid."""
        return {link: self.link_length(*link) for link in self.grid.links()}

    # ------------------------------------------------------------------
    # the flattening drawback: physically close but logically distant nodes
    # ------------------------------------------------------------------
    def closest_cross_half_pairs(self, top_k: int = 5) -> List[Tuple[NodeId, NodeId, float, int]]:
        """Physically closest node pairs from opposite halves of the cylinder.

        Returns up to ``top_k`` tuples ``(front_node, back_node, physical
        distance, grid hop distance)`` ordered by physical distance.  The grid
        distance of these pairs is what makes the naive flattening problematic:
        they are neighbours on the die but far apart in the HEX grid, so their
        clock skew is only bounded by the much weaker diameter bound.
        """
        front = [node for node in self.grid.nodes() if not self.is_back_half(node[1])]
        back = [node for node in self.grid.nodes() if self.is_back_half(node[1])]
        pairs: List[Tuple[NodeId, NodeId, float, int]] = []
        for front_node in front:
            fx, fy = self.position(front_node)
            for back_node in back:
                if front_node[0] != back_node[0]:
                    continue  # compare within the same layer only
                bx, by = self.position(back_node)
                distance = math.hypot(bx - fx, by - fy)
                pairs.append(
                    (
                        front_node,
                        back_node,
                        distance,
                        self.grid.hop_distance(front_node, back_node),
                    )
                )
        pairs.sort(key=lambda item: item[2])
        return pairs[:top_k]


def planar_wire_length_stats(embedding: FlattenedEmbedding) -> Dict[str, float]:
    """Summary statistics of the flattened embedding.

    Returns
    -------
    dict
        ``max_link_length``, ``avg_link_length``, ``min_link_length`` (in
        multiples of the column pitch), ``length_ratio`` (max / min, the
        figure of merit for delay balancing), and
        ``closest_cross_half_grid_distance`` (grid hops of the physically
        closest cross-half pair).
    """
    lengths = np.array(list(embedding.all_link_lengths().values()), dtype=float)
    closest = embedding.closest_cross_half_pairs(top_k=1)
    cross_distance = float(closest[0][3]) if closest else float("nan")
    return {
        "max_link_length": float(lengths.max()),
        "avg_link_length": float(lengths.mean()),
        "min_link_length": float(lengths.min()),
        "length_ratio": float(lengths.max() / lengths.min()),
        "closest_cross_half_grid_distance": cross_distance,
    }
