"""Rule registry and check runner.

Mirrors the registry idiom of :mod:`repro.engines` and
:mod:`repro.topologies`: rules self-register at import time through
:func:`register_rule`, the CLI looks them up by id, and
:func:`run_checks` drives the whole pass -- scan the tree once, run each
rule, thread every finding through the inline-waiver filter, and flag
waivers that are empty (``W001``) or stale (``W002``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.checks.findings import SEVERITIES, Finding
from repro.checks.schemas import schema
from repro.checks.source import SourceModule, scan_package

__all__ = [
    "Rule",
    "CheckContext",
    "CheckReport",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "available_rules",
    "run_checks",
    "default_root",
]

#: Rule ids reserved for the waiver framework itself (emitted by the runner,
#: not by a registered check body).
FRAMEWORK_RULES = ("W001", "W002")


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule.

    Attributes
    ----------
    id:
        Short stable identifier (``"L001"``); what ``--rule`` selects and
        findings carry.
    name:
        Kebab-case human name (``"layering-dag"``).
    severity:
        Severity of the findings this rule yields.
    waiver:
        Tag of the inline waiver that may cover this rule's findings
        (``"import"`` matches ``# repro: allow-import[reason]``), or ``None``
        for contract rules that must never be waived in place.
    doc:
        One-paragraph description shown by ``hex-repro check --list``.
    check:
        The rule body: ``check(context) -> iterable of Finding``.
    """

    id: str
    name: str
    severity: str
    waiver: Optional[str]
    doc: str
    check: Callable[["CheckContext"], Iterable[Finding]]

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )
        if self.id in FRAMEWORK_RULES:
            raise ValueError(f"rule id {self.id!r} is reserved for the waiver framework")


@dataclass
class CheckContext:
    """Everything a rule body may consult: the scanned tree and its root."""

    root: Path
    modules: List[SourceModule]

    def module(self, rel_path: str) -> Optional[SourceModule]:
        """Look one module up by its root-relative path."""
        for module in self.modules:
            if module.rel_path == rel_path:
                return module
        return None


_RULES: Dict[str, Rule] = {}


def register_rule(
    *,
    id: str,
    name: str,
    severity: str = "error",
    waiver: Optional[str] = None,
    doc: str = "",
) -> Callable[[Callable[[CheckContext], Iterable[Finding]]], Callable[[CheckContext], Iterable[Finding]]]:
    """Class/function decorator registering one rule body under ``id``."""

    def decorator(
        check: Callable[[CheckContext], Iterable[Finding]]
    ) -> Callable[[CheckContext], Iterable[Finding]]:
        if id in _RULES:
            raise ValueError(f"rule id {id!r} is already registered")
        _RULES[id] = Rule(
            id=id, name=name, severity=severity, waiver=waiver, doc=doc, check=check
        )
        return check

    return decorator


def unregister_rule(rule_id: str) -> None:
    """Remove a rule from the registry (test isolation helper)."""
    _RULES.pop(rule_id, None)


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id, listing the known ids on a miss."""
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES)) or "(none loaded)"
        raise ValueError(
            f"unknown rule {rule_id!r}; registered rules: {known} "
            "(did you call load_builtin_rules()?)"
        ) from None


def available_rules() -> List[Rule]:
    """All registered rules, sorted by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).resolve().parent


@dataclass
class CheckReport:
    """The outcome of one :func:`run_checks` pass."""

    root: Path
    rules: List[str]
    findings: List[Finding]
    waived: List[Finding]

    @property
    def clean(self) -> bool:
        """Whether the gate passes (no active findings)."""
        return not self.findings

    def exit_code(self) -> int:
        """CLI/CI exit code: 0 clean, 1 findings."""
        return 0 if self.clean else 1

    def render(self) -> str:
        """Human-readable report (one clickable line per finding)."""
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.waived)} waived, "
            f"{len(self.rules)} rule(s) over {self.root}"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``hex-repro/check-findings/v1`` document (the CI artifact)."""
        return {
            "schema": schema("check-findings"),
            "root": str(self.root),
            "rules": list(self.rules),
            "findings": [finding.to_json_dict() for finding in self.findings],
            "waived": [finding.to_json_dict() for finding in self.waived],
        }


def run_checks(
    root: Optional[Path] = None,
    rule_ids: Optional[Sequence[str]] = None,
    package: str = "repro",
) -> CheckReport:
    """Run the (selected) rules over the package tree under ``root``.

    Waiver semantics: a finding whose line (or the line above) carries a
    matching ``# repro: allow-<tag>[reason]`` comment moves to the report's
    ``waived`` list when the reason is non-empty.  An empty reason keeps the
    finding active and adds a ``W001`` finding; when the *full* rule set runs,
    waivers that covered nothing add ``W002`` findings (rule subsets skip the
    staleness pass, since unselected rules cannot mark their waivers used).
    """
    scan_root = Path(root) if root is not None else default_root()
    modules = scan_package(scan_root, package=package)
    context = CheckContext(root=scan_root, modules=modules)
    by_path = {module.rel_path: module for module in modules}

    if rule_ids is None:
        selected = available_rules()
    else:
        selected = [get_rule(rule_id) for rule_id in rule_ids]

    active: List[Finding] = []
    waived: List[Finding] = []
    for rule in selected:
        for finding in rule.check(context):
            module = by_path.get(finding.path)
            waiver = (
                module.waiver_at(finding.line, rule.waiver)
                if module is not None and rule.waiver is not None
                else None
            )
            if waiver is None:
                active.append(finding)
                continue
            waiver.used = True
            if waiver.reason:
                waived.append(
                    replace(finding, waived=True, waiver_reason=waiver.reason)
                )
            else:
                active.append(finding)
                active.append(
                    Finding(
                        rule="W001",
                        severity="error",
                        path=finding.path,
                        line=waiver.line,
                        message=(
                            f"waiver 'allow-{waiver.tag}' has an empty reason; "
                            "every exception must say why: "
                            f"# repro: allow-{waiver.tag}[reason]"
                        ),
                    )
                )
    if rule_ids is None:
        for module in modules:
            for waiver in module.waivers:
                if not waiver.used:
                    active.append(
                        Finding(
                            rule="W002",
                            severity="error",
                            path=module.rel_path,
                            line=waiver.line,
                            message=(
                                f"waiver 'allow-{waiver.tag}' covers no finding; "
                                "delete the stale exception (or fix its tag)"
                            ),
                        )
                    )
    # One waiver can cover several findings; dedupe the framework findings it
    # spawned (Finding equality ignores the waiver bookkeeping fields).
    active = sorted(dict.fromkeys(active), key=Finding.sort_key)
    waived.sort(key=Finding.sort_key)
    return CheckReport(
        root=scan_root,
        rules=[rule.id for rule in selected],
        findings=active,
        waived=waived,
    )
