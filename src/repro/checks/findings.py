"""The findings model of the static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  Findings are
value objects: rules yield them, the runner sorts and deduplicates them, the
CLI renders them as ``path:line: RULE message`` lines or as the
``hex-repro/check-findings/v1`` JSON document the CI gate archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["SEVERITIES", "Finding"]

#: Recognised severities.  Both fail the gate; ``warning`` marks rules whose
#: static approximation can over-trigger and whose findings are therefore
#: expected to be waived (with a reason) more often than fixed.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        The rule id (``"L001"``, ``"D002"``, ...).
    severity:
        ``"error"`` or ``"warning"`` (both fail the gate).
    path:
        Path of the offending file, relative to the scanned package root
        (POSIX separators, e.g. ``"simulation/runner.py"``).
    line:
        1-based line number of the violation.
    message:
        Human-readable description, actionable enough to fix or waive.
    waived:
        Whether an inline waiver with a reason covers this finding.  Waived
        findings never fail the gate; they ride along in ``--json`` output so
        the waiver inventory stays visible.
    waiver_reason:
        The reason string of the covering waiver (empty when not waived).
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    waived: bool = field(default=False, compare=False)
    waiver_reason: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )
        if self.line < 1:
            raise ValueError(f"line numbers are 1-based, got {self.line}")

    def sort_key(self) -> Tuple[str, int, str]:
        """Stable presentation order: by file, then line, then rule id."""
        return (self.path, self.line, self.rule)

    def format(self) -> str:
        """One-line rendering, editor-clickable: ``path:line: RULE message``."""
        suffix = f"  [waived: {self.waiver_reason}]" if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} {self.message}{suffix}"

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (the ``--json`` document items)."""
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.waived:
            payload["waived"] = True
            payload["waiver_reason"] = self.waiver_reason
        return payload
