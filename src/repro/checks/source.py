"""Source-tree model and AST visitor framework of the static-analysis pass.

The scanner turns a package directory into a list of :class:`SourceModule`
objects -- parsed AST, dotted module name, and the inline waivers found in the
file.  Rules program against this surface instead of re-reading files, so one
``hex-repro check`` run parses each module exactly once.

Waiver syntax
-------------
A finding is waived by a narrow inline comment on the offending line (or the
line directly above it)::

    from repro.engines.des import single_pulse_default_timeouts  # repro: allow-import[legacy shim]

The tag (``import``, ``random``, ``wall-clock``, ``json-dumps``,
``float-eq``, ``schema-literal``) must match the rule being waived, and the
bracketed reason must be non-empty -- an empty reason keeps the finding *and*
adds a ``W001`` finding, so silent exceptions cannot accumulate.  Waivers that
cover nothing raise ``W002``, so stale exceptions are garbage-collected by the
gate itself.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

__all__ = [
    "WAIVER_PATTERN",
    "Waiver",
    "SourceModule",
    "RuleVisitor",
    "scan_package",
]

#: The inline waiver grammar: ``# repro: allow-<tag>[reason]``.
WAIVER_PATTERN = re.compile(
    r"#\s*repro:\s*allow-(?P<tag>[a-z][a-z-]*)\[(?P<reason>[^\]]*)\]"
)


@dataclass
class Waiver:
    """One inline waiver comment.

    ``used`` is flipped by the runner when a finding matches; unused waivers
    surface as ``W002`` findings so exceptions cannot outlive their cause.
    """

    tag: str
    reason: str
    line: int
    used: bool = False


@dataclass
class SourceModule:
    """One parsed source file of the scanned package.

    Attributes
    ----------
    path:
        Absolute path of the file.
    rel_path:
        Path relative to the scanned package root (POSIX separators); the
        ``path`` findings carry.
    module:
        Dotted module name rooted at the package (e.g.
        ``"repro.engines.base"``).
    source:
        The raw file contents.
    tree:
        The parsed :class:`ast.Module`.
    waivers:
        The inline waivers of the file, in line order.
    """

    path: Path
    rel_path: str
    module: str
    source: str
    tree: ast.Module
    waivers: List[Waiver] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path, package: str = "repro") -> "SourceModule":
        """Parse one file under ``root`` into a module model."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        rel = path.relative_to(root).as_posix()
        parts = rel[: -len(".py")].split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        module = ".".join([package] + parts) if parts else package
        # Waivers are extracted from real COMMENT tokens, not raw lines, so
        # prose *about* the waiver syntax (docstrings, messages) never counts.
        waivers = [
            Waiver(
                tag=match.group("tag"),
                reason=match.group("reason").strip(),
                line=token.start[0],
            )
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
            for match in WAIVER_PATTERN.finditer(token.string)
        ]
        return cls(
            path=path,
            rel_path=rel,
            module=module,
            source=source,
            tree=tree,
            waivers=waivers,
        )

    # ------------------------------------------------------------------
    # waiver lookup
    # ------------------------------------------------------------------
    def waiver_at(self, line: int, tag: str) -> Optional[Waiver]:
        """The waiver covering a finding at ``line`` (same line or the one above).

        A same-line waiver wins over a line-above one, so stacked single-line
        waivers each cover their own line.
        """
        above = None
        for waiver in self.waivers:
            if waiver.tag != tag:
                continue
            if waiver.line == line:
                return waiver
            if waiver.line == line - 1 and above is None:
                above = waiver
        return above

    # ------------------------------------------------------------------
    # AST helpers shared by rules
    # ------------------------------------------------------------------
    def package_relative(self) -> str:
        """Module name relative to the package root (``""`` for the root)."""
        _, _, rest = self.module.partition(".")
        return rest

    def documentation_lines(self) -> Set[int]:
        """Line numbers covered by documentation string statements.

        Any bare string-expression statement counts (module, class and
        function docstrings, plus the trailing attribute-doc strings some
        modules use); rules matching string literals skip these so prose may
        mention artifact formats freely.
        """
        lines: Set[int] = set()
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                end = node.end_lineno if node.end_lineno is not None else node.lineno
                lines.update(range(node.lineno, end + 1))
        return lines

    def repro_imports(self) -> Iterator[Tuple[int, str]]:
        """All project-internal imports as ``(line, dotted target)`` pairs.

        Handles the three idioms in use: ``import repro.x.y``,
        ``from repro.x.y import name`` and ``from repro import x`` (which
        targets the submodule ``repro.x``, not the root package).  Imports of
        the bare root package (``import repro``) yield ``"repro"``.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        yield node.lineno, alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level != 0:
                    # Relative imports stay inside their own package and are
                    # resolved against the module's location.
                    base = self.module.rsplit(".", node.level)[0]
                    target = f"{base}.{node.module}" if node.module else base
                    yield node.lineno, target
                elif node.module == "repro":
                    for alias in node.names:
                        yield node.lineno, f"repro.{alias.name}"
                elif node.module is not None and node.module.startswith("repro."):
                    yield node.lineno, node.module


class RuleVisitor(ast.NodeVisitor):
    """Base class for AST-walking rules.

    Subclasses call :meth:`report` with the offending node; the collected
    ``(line, message)`` pairs are turned into findings (and filtered through
    waivers) by the rule body.  Keeping the visitor dumb -- no severity, no
    waiver logic -- means every rule reports through one code path in the
    runner.
    """

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.hits: List[Tuple[int, str]] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at ``node``'s location."""
        self.hits.append((getattr(node, "lineno", 1), message))

    def run(self) -> List[Tuple[int, str]]:
        """Visit the module's tree and return the collected hits."""
        self.visit(self.module.tree)
        return self.hits


def scan_package(root: Path, package: str = "repro") -> List[SourceModule]:
    """Parse every ``*.py`` file under ``root`` into :class:`SourceModule` s.

    Files are visited in sorted order so findings -- and therefore the CLI
    output and the CI artifact -- are deterministic.
    """
    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"not a package directory: {root}")
    return [
        SourceModule.load(path, root, package=package)
        for path in sorted(root.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]
