"""Single source of truth for artifact schema version strings.

Every JSON artifact this project emits carries a ``hex-repro/<name>/v<N>``
schema string so consumers can sniff what they are reading and reject
documents from a different era.  Those strings are *contracts*: two modules
spelling the same schema differently (or bumping a version in one place but
not another) silently forks the artifact format.  This registry therefore
declares each schema exactly once; every producer and consumer references it
from here, and the ``S001`` static-analysis rule (:mod:`repro.checks.artifacts`)
rejects schema literals anywhere else in the source tree.

This module is deliberately dependency-free (it imports nothing from
``repro``) so that foundation layers -- :mod:`repro.adversary`,
:mod:`repro.campaign`, :mod:`repro.obs`, :mod:`repro.bench` -- can import it
without inverting the layer DAG enforced by :mod:`repro.checks.layering`:
``checks.schemas`` is pinned as a foundation leaf importable from anywhere,
while the rest of :mod:`repro.checks` sits at the top of the stack.
"""

from __future__ import annotations

import re
from typing import Dict

__all__ = ["SCHEMA_PATTERN", "SCHEMAS", "schema"]

#: What a well-formed schema string looks like.  The middle component must
#: equal the registry key, so registry lookups and sniffed documents agree on
#: the artifact's name.
SCHEMA_PATTERN = re.compile(r"^hex-repro/(?P<name>[a-z][a-z0-9-]*)/v(?P<version>[0-9]+)$")

#: The registry: artifact name -> its current schema version string.
#:
#: Bumping a version here is a *deliberate* format change: every producer and
#: consumer picks it up at once, and the S002 rule keeps the table well-formed.
SCHEMAS: Dict[str, str] = {
    # campaign run records (one JSONL line per executed RunTask)
    "run-record": "hex-repro/run-record/v1",
    # declarative dynamic fault schedules (repro.adversary)
    "fault-schedule": "hex-repro/fault-schedule/v1",
    # observability span/event traces (repro.obs, JSONL)
    "trace": "hex-repro/trace/v1",
    # observability metrics snapshots (repro.obs)
    "metrics": "hex-repro/metrics/v1",
    # raw per-worker metrics shards written on pool teardown (repro.obs);
    # unlike "metrics" these carry raw timer values so the parent can merge
    # percentiles exactly
    "worker-metrics": "hex-repro/worker-metrics/v1",
    # one benchmark suite's BENCH_<suite>.json artifact (repro.bench)
    "bench-suite": "hex-repro/bench-suite/v1",
    # the combined BENCH_suite.json artifact (repro.bench)
    "bench": "hex-repro/bench/v1",
    # `hex-repro check --json` findings documents (repro.checks)
    "check-findings": "hex-repro/check-findings/v1",
    # resumable soak-run checkpoints (repro.experiments.soak)
    "soak": "hex-repro/soak/v1",
}


def schema(name: str) -> str:
    """The registered schema string of one artifact name.

    Raises
    ------
    KeyError
        With the known names listed, when ``name`` is not registered.
    """
    try:
        return SCHEMAS[name]
    except KeyError:
        raise KeyError(
            f"unknown artifact schema {name!r}; registered names: "
            f"{', '.join(sorted(SCHEMAS))}"
        ) from None
