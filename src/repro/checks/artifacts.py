"""Artifact-schema rules: one registry, zero scattered version strings.

Every persistent artifact the toolchain writes self-describes with a
``"hex-repro/<name>/v<N>"`` schema string.  Those strings are load-bearing --
readers dispatch on them -- so they must be declared exactly once, in
:mod:`repro.checks.schemas`, and referenced through :func:`~.schemas.schema`.

``S001`` flags any schema-shaped string constant in executable code outside
the registry module (docstrings are exempt: prose may name formats freely).
``S002`` validates the registry itself: every entry well-formed, names
matching their keys, and no two entries colliding on one string.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import CheckContext, register_rule
from repro.checks.schemas import SCHEMA_PATTERN, SCHEMAS

__all__ = ["SCHEMA_REGISTRY_MODULE"]

#: The one module allowed to spell schema strings out.
SCHEMA_REGISTRY_MODULE = "checks/schemas.py"


@register_rule(
    id="S001",
    name="schema-single-source",
    severity="error",
    waiver="schema-literal",
    doc=(
        "Artifact schema strings (hex-repro/<name>/v<N>) are declared exactly "
        "once, in repro.checks.schemas, and referenced via schema(name); a "
        "literal anywhere else can drift from the registry when a version "
        "bumps.  Docstrings are exempt.  Waive deliberate literals (e.g. help "
        "text showing example output) with # repro: allow-schema-literal[reason]."
    ),
)
def check_schema_literals(context: CheckContext) -> Iterator[Finding]:
    """Flag schema-shaped string constants outside the registry module."""
    for module in context.modules:
        if module.rel_path == SCHEMA_REGISTRY_MODULE:
            continue
        documentation = module.documentation_lines()
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Constant) and isinstance(node.value, str)):
                continue
            if not SCHEMA_PATTERN.match(node.value):
                continue
            if node.lineno in documentation:
                continue
            yield Finding(
                rule="S001",
                severity="error",
                path=module.rel_path,
                line=node.lineno,
                message=(
                    f"schema string {node.value!r} spelled out here; declare it "
                    "once in repro.checks.schemas and reference it via "
                    "schema(name) so version bumps cannot drift"
                ),
            )


@register_rule(
    id="S002",
    name="schema-registry-valid",
    severity="error",
    doc=(
        "The schema registry itself must stay coherent: every value matches "
        "hex-repro/<name>/v<N>, the <name> component equals its registry key, "
        "and no two keys map to one string.  Not waivable: a malformed "
        "registry breaks every reader that dispatches on schema strings."
    ),
)
def check_schema_registry(context: CheckContext) -> Iterator[Finding]:
    """Validate the registry entries themselves."""

    def finding(message: str) -> Finding:
        return Finding(
            rule="S002",
            severity="error",
            path=SCHEMA_REGISTRY_MODULE,
            line=1,
            message=message,
        )

    seen: dict = {}
    for key in sorted(SCHEMAS):
        value = SCHEMAS[key]
        match = SCHEMA_PATTERN.match(value)
        if match is None:
            yield finding(
                f"registry entry {key!r} = {value!r} does not match "
                "hex-repro/<name>/v<N>"
            )
            continue
        if match.group("name") != key:
            yield finding(
                f"registry key {key!r} does not match its schema name "
                f"{match.group('name')!r} in {value!r}"
            )
        if value in seen:
            yield finding(
                f"registry keys {seen[value]!r} and {key!r} both declare "
                f"{value!r}; schema strings must be unique"
            )
        seen.setdefault(value, key)
