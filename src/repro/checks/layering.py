"""Layering rules: the declarative import DAG of the package.

The architecture contract (see DESIGN.md "Layering"):

* the simulation core (``core``, ``simulation``, ``faults``, ``topologies``,
  ``clocksource``, ``clocktree``, ``embedding``, ``multiplication``) imports
  nothing from the execution/orchestration layers above it;
* ``engines`` builds on the core (plus the ``adversary`` value objects) and is
  the only execution surface;
* ``campaign``, ``experiments`` and ``bench`` build on ``engines``;
* ``cli`` (and the root facade) sit on top and may import anything;
* ``obs`` is a leaf importable only from approved layers (``engines``,
  ``campaign``, ``experiments``, ``bench``, ``cli``) -- the simulation core
  and ``analysis`` must stay observable-free so enabling instrumentation can
  never change results;
* ``stream`` (bounded-memory accumulators) is a dependency-free leaf below
  even ``obs``: ``analysis``, ``obs``, ``campaign``, ``experiments`` and
  ``bench`` may import it without cycles;
* ``checks.schemas`` (the artifact-schema registry) is a dependency-free
  foundation leaf importable from anywhere; the rest of ``checks`` is a
  top-layer tool.

``L001`` flags any import edge the DAG does not allow; ``L002`` flags source
packages missing from the DAG entirely, so new subsystems must declare their
layer before they can import anything.  Exceptions are waived inline with
``# repro: allow-import[reason]`` and therefore stay visible in diffs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import CheckContext, register_rule

__all__ = ["LAYER_DAG", "FOUNDATION_MODULES", "package_of"]

#: Modules importable from anywhere (dependency-free foundation leaves).
FOUNDATION_MODULES: FrozenSet[str] = frozenset({"checks.schemas"})

#: The allowed import edges: source package -> packages it may import.
#: ``"*"`` means "anything" (top-layer entry points and the analysis tool
#: itself); the empty-string key is the root ``repro`` facade.
LAYER_DAG: Dict[str, FrozenSet[str]] = {
    # -- simulation core ------------------------------------------------
    "core": frozenset({"faults"}),
    "faults": frozenset({"core", "topologies"}),
    "topologies": frozenset({"core"}),
    "clocksource": frozenset({"core"}),
    "clocktree": frozenset({"core"}),
    "embedding": frozenset({"core"}),
    "multiplication": frozenset({"core"}),
    "simulation": frozenset({"core", "faults"}),
    # -- adversary value objects (consumed by engines and campaigns) ----
    "adversary": frozenset({"core", "faults", "simulation", "topologies"}),
    # -- streaming accumulators are a dependency-free leaf --------------
    "stream": frozenset(),
    # -- analysis stays obs-free (lazy artifact loaders are waived) -----
    "analysis": frozenset({"core", "faults", "simulation", "stream", "topologies"}),
    # -- observability sits on the stream leaf only ---------------------
    # (covers every repro.obs submodule, incl. the cross-process layer:
    # obs.context / obs.merge / obs.resources import nothing outside the
    # package beyond stream + the checks.schemas foundation leaf)
    "obs": frozenset({"stream"}),
    # -- execution layer ------------------------------------------------
    "engines": frozenset(
        {
            "adversary",
            "clocksource",
            "clocktree",
            "core",
            "faults",
            "obs",
            "simulation",
            "topologies",
        }
    ),
    # -- orchestration layers -------------------------------------------
    "campaign": frozenset(
        {
            "adversary",
            "analysis",
            "clocksource",
            "core",
            "engines",
            "faults",
            "obs",
            "simulation",
            "stream",
            "topologies",
        }
    ),
    "experiments": frozenset(
        {
            "adversary",
            "analysis",
            "campaign",
            "clocksource",
            "clocktree",
            "core",
            "engines",
            "faults",
            "obs",
            "simulation",
            "stream",
            "topologies",
        }
    ),
    "bench": frozenset(
        {
            "analysis",
            "campaign",
            "clocksource",
            "core",
            "engines",
            "experiments",
            "faults",
            "obs",
            "stream",
            "topologies",
        }
    ),
    # -- top layer -------------------------------------------------------
    "checks": frozenset({"*"}),
    "cli": frozenset({"*"}),
    "__main__": frozenset({"cli"}),
    "": frozenset({"*"}),  # the root facade re-exports the public surface
}


def package_of(module: str) -> str:
    """The layer name of a dotted module path.

    ``repro.engines.base`` -> ``engines``; the bare root -> ``""``; foundation
    leaves keep their full sub-path (``repro.checks.schemas`` ->
    ``checks.schemas``) so they can be layered independently of their parent
    package.
    """
    _, _, rest = module.partition(".")
    if rest in FOUNDATION_MODULES:
        return rest
    return rest.split(".", 1)[0] if rest else ""


@register_rule(
    id="L001",
    name="layering-dag",
    severity="error",
    waiver="import",
    doc=(
        "Imports must follow the declarative layer DAG: the simulation core "
        "imports nothing from engines/campaign/bench/obs, engines build on the "
        "core, orchestration builds on engines, and only approved layers may "
        "import repro.obs.  Waive deliberate exceptions with "
        "# repro: allow-import[reason]."
    ),
)
def check_layering(context: CheckContext) -> Iterator[Finding]:
    """Flag every project-internal import edge the DAG does not allow."""
    for module in context.modules:
        source_package = package_of(module.module)
        allowed = LAYER_DAG.get(source_package)
        if allowed is None:
            # L002 reports the undeclared package; avoid double-reporting
            # every import it contains.
            continue
        for line, target in module.repro_imports():
            target_package = package_of(target)
            if target_package in FOUNDATION_MODULES:
                continue
            if target_package == source_package or "*" in allowed:
                continue
            if target_package in allowed:
                continue
            yield Finding(
                rule="L001",
                severity="error",
                path=module.rel_path,
                line=line,
                message=(
                    f"layer {source_package or 'repro'!r} may not import "
                    f"{target!r} (layer {target_package or 'repro'!r}); allowed: "
                    f"{', '.join(sorted(allowed)) or '(nothing)'} -- move the "
                    "dependency down a layer, or waive with "
                    "# repro: allow-import[reason]"
                ),
            )


@register_rule(
    id="L002",
    name="layering-undeclared",
    severity="error",
    doc=(
        "Every package must be declared in the layer DAG "
        "(repro.checks.layering.LAYER_DAG) before it can ship: an undeclared "
        "package has no import budget, so new subsystems pick their layer "
        "explicitly and reviewably."
    ),
)
def check_declared(context: CheckContext) -> Iterator[Finding]:
    """Flag modules whose package has no entry in the layer DAG."""
    seen = set()
    for module in context.modules:
        source_package = package_of(module.module)
        if source_package in LAYER_DAG or source_package in FOUNDATION_MODULES:
            continue
        if source_package in seen:
            continue
        seen.add(source_package)
        yield Finding(
            rule="L002",
            severity="error",
            path=module.rel_path,
            line=1,
            message=(
                f"package {source_package!r} is not declared in the layer DAG; "
                "add it to repro.checks.layering.LAYER_DAG with the set of "
                "layers it may import"
            ),
        )
