"""Content-key stability rules: the serialized-spec compatibility contract.

Content keys (truncated SHA-256 over :func:`repro.engines.base.canonical_json`)
name every run, sweep cell and campaign on disk.  Two things can silently
rename the whole corpus:

* a defaulted field leaking into the canonical JSON (every *existing* spec's
  key changes even though nothing about it changed), or a non-default field
  being dropped (two different specs collide on one key);
* any byte-level change to the canonical serialization itself.

``K001`` checks the omit-at-default contract by actually constructing the spec
classes and probing their ``to_json_dict`` output; ``K002`` pins the content
keys of a small spec corpus to golden values.  Both rules are *semi-static*:
they import the live classes rather than pattern-matching source, so any code
path that changes the serialization trips them no matter how it is written.

Neither rule is waivable inline -- an intentional key migration must edit the
manifests/golden corpus here, which is exactly the reviewable diff we want.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.checks.findings import Finding
from repro.checks.registry import CheckContext, register_rule

__all__ = [
    "OmissionManifest",
    "OMISSION_MANIFESTS",
    "GOLDEN_SPECS",
    "omission_findings",
    "golden_key_findings",
]


@dataclass
class OmissionManifest:
    """The omit-at-default contract of one serializable spec class.

    Attributes
    ----------
    name:
        Class name, for messages.
    anchor:
        Package-root-relative path of the defining module; findings are
        anchored to the ``class`` statement there.
    build_default:
        Zero-argument constructor of an all-defaults instance.
    omitted:
        Fields that must be *absent* from ``to_json_dict()`` at default.
    probes:
        ``field -> builder`` map: each builder returns an instance where that
        field is non-default, and the field must then be *present*.
    """

    name: str
    anchor: str
    build_default: Callable[[], Any]
    omitted: Tuple[str, ...]
    probes: Dict[str, Callable[[], Any]] = field(default_factory=dict)


def _build_omission_manifests() -> List[OmissionManifest]:
    # Imported lazily: the rule bodies need the live classes, but merely
    # loading the rule registry (e.g. for `check --list`) should not drag in
    # the whole runtime.
    from repro.adversary.schedule import FaultSchedule
    from repro.campaign.spec import CampaignSpec, RunTask, SweepSpec
    from repro.engines.base import RunSpec
    from repro.experiments.soak import SoakSpec

    def default_task() -> RunTask:
        campaign = CampaignSpec(
            name="k001", cells=(SweepSpec(layers=(2,), width=(4,), runs=1),)
        )
        return next(iter(campaign.tasks()))

    def task_with(**cell_overrides: Any) -> RunTask:
        campaign = CampaignSpec(
            name="k001",
            cells=(SweepSpec(layers=(2,), width=(4,), runs=1, **cell_overrides),),
        )
        return next(iter(campaign.tasks()))

    burst = FaultSchedule.burst(time=5.0, count=2)
    return [
        OmissionManifest(
            name="RunSpec",
            anchor="engines/base.py",
            build_default=RunSpec,
            omitted=("topology", "fault_schedule", "initial_states"),
            probes={
                "topology": lambda: RunSpec(topology="torus"),
                "fault_schedule": lambda: RunSpec(fault_schedule=burst),
                "initial_states": lambda: RunSpec(
                    kind="multi_pulse", initial_states="clean"
                ),
            },
        ),
        OmissionManifest(
            name="SweepSpec",
            anchor="campaign/spec.py",
            build_default=SweepSpec,
            omitted=(
                "delay_model",
                "fault_schedule",
                "topology",
                "initial_states",
                "require_exactness",
            ),
            probes={
                "delay_model": lambda: SweepSpec(delay_model=("uniform",)),
                # Dynamic schedules only execute on the DES engine.
                "fault_schedule": lambda: SweepSpec(
                    engine=("des",), fault_schedule=(burst,)
                ),
                "topology": lambda: SweepSpec(topology=("torus",)),
                "initial_states": lambda: SweepSpec(
                    kind="multi_pulse", initial_states="clean"
                ),
                # The solver's contract is unconditionally bit-identical, so
                # the requirement is satisfiable with all other defaults.
                "require_exactness": lambda: SweepSpec(
                    require_exactness="bit_identical"
                ),
            },
        ),
        OmissionManifest(
            name="RunTask",
            anchor="campaign/spec.py",
            build_default=default_task,
            omitted=("delay_model", "fault_schedule", "topology", "initial_states"),
            probes={
                "delay_model": lambda: task_with(delay_model=("uniform",)),
                "fault_schedule": lambda: task_with(
                    engine=("des",), fault_schedule=(burst,)
                ),
                "topology": lambda: task_with(topology=("torus",)),
                "initial_states": lambda: task_with(
                    kind="multi_pulse", num_pulses=2, initial_states="clean"
                ),
            },
        ),
        OmissionManifest(
            name="SoakSpec",
            anchor="experiments/soak.py",
            build_default=SoakSpec,
            omitted=("fault_type", "initial_states"),
            probes={
                "fault_type": lambda: SoakSpec(fault_type="fail_silent"),
                "initial_states": lambda: SoakSpec(initial_states="clean"),
            },
        ),
    ]


#: Lazy accessor so import stays cheap; memoised after first build.
_MANIFEST_CACHE: List[OmissionManifest] = []


def OMISSION_MANIFESTS() -> List[OmissionManifest]:
    """The omit-at-default manifests of the real spec classes."""
    if not _MANIFEST_CACHE:
        _MANIFEST_CACHE.extend(_build_omission_manifests())
    return _MANIFEST_CACHE


def _anchor_line(context: CheckContext, manifest: OmissionManifest) -> int:
    """Line of the ``class`` statement in the anchoring module (1 if unknown)."""
    module = context.module(manifest.anchor)
    if module is None:
        return 1
    import ast

    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == manifest.name:
            return node.lineno
    return 1


def omission_findings(
    context: CheckContext, manifests: List[OmissionManifest]
) -> Iterator[Finding]:
    """The K001 check body, reusable against fixture manifests in tests."""
    for manifest in manifests:
        line = _anchor_line(context, manifest)

        def finding(message: str) -> Finding:
            return Finding(
                rule="K001",
                severity="error",
                path=manifest.anchor,
                line=line,
                message=message,
            )

        try:
            document = manifest.build_default().to_json_dict()
        except Exception as error:  # pragma: no cover - manifest rot
            yield finding(
                f"{manifest.name}: default construction failed ({error}); "
                "fix the omission manifest in repro.checks.contentkeys"
            )
            continue
        for name in manifest.omitted:
            if name in document:
                yield finding(
                    f"{manifest.name}.to_json_dict() serializes defaulted field "
                    f"{name!r}; the omit-at-default contract keeps content keys "
                    "stable across spec-schema growth -- omit the field when it "
                    "holds its default value"
                )
        for name, probe in manifest.probes.items():
            try:
                probed = probe().to_json_dict()
            except Exception as error:  # pragma: no cover - manifest rot
                yield finding(
                    f"{manifest.name}: probe for {name!r} failed ({error}); "
                    "fix the omission manifest in repro.checks.contentkeys"
                )
                continue
            if name not in probed:
                yield finding(
                    f"{manifest.name}.to_json_dict() drops non-default field "
                    f"{name!r}; two different specs would collide on one "
                    "content key"
                )


def _build_golden_specs() -> Dict[str, Tuple[Callable[[], str], str]]:
    from repro.adversary.schedule import FaultSchedule
    from repro.campaign.spec import CampaignSpec, SweepSpec
    from repro.engines.base import RunSpec, content_key
    from repro.experiments.soak import SoakCheckpoint, SoakSpec
    from repro.stream import StreamSummary

    def soak_variant() -> SoakSpec:
        return SoakSpec(
            layers=4,
            width=5,
            num_pulses=100,
            pulses_per_epoch=25,
            faults=1,
            fault_type="fail_silent",
            heal_fraction=0.5,
            epsilon=0.01,
            exact_cap=16,
            seed=7,
            initial_states="clean",
        )

    def soak_checkpoint_key() -> str:
        # A fully-deterministic checkpoint (no simulation, fixed streams);
        # pins the accumulator serialization and the state_key contract.
        skew = StreamSummary(epsilon=0.01, exact_cap=4)
        skew.extend([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        skew.flush()
        recovery = StreamSummary(epsilon=0.01, exact_cap=4)
        recovery.extend([10.0, 20.0])
        return SoakCheckpoint(
            spec=soak_variant(),
            epochs_completed=2,
            pulses_completed=50,
            faults_injected=2,
            faults_healed=2,
            recoveries=2,
            skew=skew,
            recovery_s=recovery,
            pulses_per_s=123.0,
            rss_bytes=456,
            wall_time_s=7.5,
        ).state_key()

    def sweep() -> SweepSpec:
        return SweepSpec(
            layers=(2,),
            width=(4,),
            scenario=("uniform_dmax",),
            num_faults=(0, 1),
            runs=2,
        )

    def campaign() -> CampaignSpec:
        return CampaignSpec(name="golden", cells=(sweep(),))

    def array_sweep() -> SweepSpec:
        # The canonical array-engine comparison cell: engine axis pairing the
        # heap solver with the dense frontier, deterministic delay models,
        # and an explicit bit-identity requirement.  Pins both the engine
        # name's spelling in the axis and the require_exactness field.
        return SweepSpec(
            layers=(8,),
            width=(8,),
            engine=("solver", "array"),
            delay_model=("constant", "max_skew"),
            runs=2,
            require_exactness="bit_identical",
        )

    return {
        "runspec-default": (
            lambda: RunSpec().key(),
            "60a9251e456992a49f9b2c0d81f1e31f",
        ),
        "runspec-variant": (
            lambda: RunSpec(
                layers=3,
                width=8,
                scenario="ramp",
                num_faults=1,
                entropy=42,
                run_index=7,
            ).key(),
            "81fab27cb2ef0ddbf3fd5079499ff373",
        ),
        "runspec-burst": (
            lambda: RunSpec(
                fault_schedule=FaultSchedule.burst(time=5.0, count=2)
            ).key(),
            "f4979a4ce74f95469a90cb1610bfc3f1",
        ),
        "sweepspec-basic": (
            lambda: content_key(sweep().to_json_dict()),
            "a259c4583f6f0a024e12877acd4e1318",
        ),
        "runspec-array-constant": (
            lambda: RunSpec(
                layers=64,
                width=64,
                delay_model="constant",
                entropy=2013,
                run_index=0,
            ).key(),
            "6006a46d90e6431c3524bfd4302b4fe2",
        ),
        "sweepspec-array-exact": (
            lambda: content_key(array_sweep().to_json_dict()),
            "da74d277b5482ad3788e213aec21a854",
        ),
        "campaign-golden": (
            lambda: campaign().key(),
            "630b1361902572fe87adbdb885284490",
        ),
        "runtask-first": (
            lambda: next(iter(campaign().tasks())).key(),
            "39721fef9039ba98682b3bef730dbca5",
        ),
        "fault-schedule-burst": (
            lambda: FaultSchedule.burst(time=5.0, count=2).key(),
            "13301e508aec9a1d9dfd226ca119e961",
        ),
        "soakspec-default": (
            lambda: SoakSpec().key(),
            "e4a86ddc1cdcfa60e9beaf1a171a2dcb",
        ),
        "soakspec-variant": (
            lambda: soak_variant().key(),
            "175e84bbaaa9f9a523663024a2794bc7",
        ),
        "soak-checkpoint": (
            soak_checkpoint_key,
            "c4e3a2c2a174d7d54159f0406d329dad",
        ),
    }


def GOLDEN_SPECS() -> Dict[str, Tuple[Callable[[], str], str]]:
    """``name -> (compute_key, expected_key)`` golden spec corpus."""
    return _build_golden_specs()


def golden_key_findings(
    corpus: Dict[str, Tuple[Callable[[], str], str]],
    anchor: str = "engines/base.py",
) -> Iterator[Finding]:
    """The K002 check body: recompute each corpus key and diff against gold."""
    for name in sorted(corpus):
        compute, expected = corpus[name]
        try:
            actual = compute()
        except Exception as error:
            yield Finding(
                rule="K002",
                severity="error",
                path=anchor,
                line=1,
                message=(
                    f"golden spec {name!r} no longer constructs ({error}); "
                    "a spec-API break renames the on-disk corpus -- restore "
                    "compatibility or migrate the golden corpus in "
                    "repro.checks.contentkeys with a documented key migration"
                ),
            )
            continue
        if actual != expected:
            yield Finding(
                rule="K002",
                severity="error",
                path=anchor,
                line=1,
                message=(
                    f"content key of golden spec {name!r} changed: expected "
                    f"{expected}, got {actual}; every stored record/campaign "
                    "key derived from this shape is now unreachable -- revert "
                    "the serialization change or migrate the golden corpus "
                    "deliberately"
                ),
            )


@register_rule(
    id="K001",
    name="contentkey-default-omission",
    severity="error",
    doc=(
        "Defaulted spec fields (RunSpec topology/fault_schedule/initial_states; "
        "SweepSpec delay_model/fault_schedule/topology/initial_states/"
        "require_exactness; RunTask delay_model/fault_schedule/topology/"
        "initial_states; SoakSpec fault_type/initial_states) must be omitted "
        "from canonical JSON at their default "
        "and present otherwise, so adding a defaulted field never renames "
        "existing records.  Not waivable: key migrations edit the manifest in "
        "repro.checks.contentkeys instead."
    ),
)
def check_default_omission(context: CheckContext) -> Iterator[Finding]:
    return omission_findings(context, OMISSION_MANIFESTS())


@register_rule(
    id="K002",
    name="contentkey-golden-corpus",
    severity="error",
    doc=(
        "Content keys of a pinned spec corpus (RunSpec default/variant/burst/"
        "array-constant, SweepSpec basic/array-exact, CampaignSpec, RunTask, "
        "FaultSchedule.burst, SoakSpec "
        "default/variant and a SoakCheckpoint state key) must match "
        "their golden values byte-for-byte; any canonical-JSON or hashing "
        "change shows up as a key diff.  Not waivable: deliberate migrations "
        "update the corpus in repro.checks.contentkeys."
    ),
)
def check_golden_keys(context: CheckContext) -> Iterator[Finding]:
    return golden_key_findings(GOLDEN_SPECS())
