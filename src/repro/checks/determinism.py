"""Determinism rules: seeded randomness, injected clocks, canonical JSON.

The reproduction's headline guarantee is that ``(spec, seed)`` determines
every record bit-for-bit.  Four rules keep the guarantees mechanical:

* ``D001`` -- no ambient randomness: the stdlib ``random`` module, NumPy's
  legacy global generator (``np.random.seed`` / ``np.random.random`` / ...)
  and unseeded ``default_rng()`` calls are all banned; randomness enters
  through a seeded ``np.random.Generator`` passed down from the
  seed-derivation coordinates.
* ``D002`` -- no wall clocks in result paths: ``time.time`` /
  ``perf_counter`` / ``datetime.now`` are confined to the telemetry modules
  (``obs``, ``bench``, campaign progress/wall-time accounting); everything
  else must take simulated time as data.
* ``D003`` -- canonical JSON only: every ``json.dumps`` call must pass
  ``sort_keys=True`` (the :func:`repro.engines.base.canonical_json` helper is
  the preferred spelling in record-producing modules), so hashes and records
  never depend on dict insertion order.
* ``D004`` -- no float equality in the solver/DES hot paths: exact ``==`` /
  ``!=`` against float literals or ``float()`` coercions silently breaks on
  the accumulated-error boundary; compare against tolerances or restructure.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.checks.findings import Finding
from repro.checks.registry import CheckContext, register_rule
from repro.checks.source import RuleVisitor, SourceModule

__all__ = [
    "NUMPY_LEGACY_GLOBALS",
    "WALL_CLOCK_ALLOWLIST",
    "WALL_CLOCK_ALLOWED_PREFIXES",
    "HOT_PATH_MODULES",
]

#: Legacy NumPy global-state RNG entry points (all draw from one hidden,
#: process-wide generator).
NUMPY_LEGACY_GLOBALS = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "binomial",
    }
)

#: Package-relative module prefixes where wall-clock (and rusage-adjacent)
#: reads are legitimate, each with the reason it is on the list: telemetry
#: and benchmarking measure the host, not the simulation.  Resource
#: accounting (``resource.getrusage``, GC stats) is deliberately NOT flagged
#: by D002 anywhere -- it cannot feed back into results -- but
#: ``obs.resources`` also reads ``/proc`` and anchors CPU-time deltas, so it
#: is named here explicitly rather than riding on the ``obs`` prefix alone.
WALL_CLOCK_ALLOWLIST = {
    "obs": "span timing, trace timelines and metrics timers measure the host",
    "obs.resources": "per-task CPU time / peak RSS / GC accounting (rusage + /proc); observability output, never simulation input",
    "bench": "benchmark harness times repetitions by definition",
    "campaign.progress": "progress/ETA reporting reads the wall clock",
    "campaign.runner": "per-record wall_time_s telemetry only",
    "experiments.soak": "pulses/sec throughput + RSS telemetry only",
}

#: Prefix tuple consumed by the D002 matcher (kept for backward
#: compatibility with callers that only need the names).
WALL_CLOCK_ALLOWED_PREFIXES = tuple(WALL_CLOCK_ALLOWLIST)

#: Modules whose inner loops carry accumulated float arithmetic; exact
#: equality there is a latent boundary bug.
HOT_PATH_MODULES = (
    "core.pulse_solver",
    "simulation.engine",
    "simulation.links",
    "simulation.network",
    "engines.des",
    "engines.solver",
)

_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "clock"}
)
_WALL_CLOCK_DATE_ATTRS = frozenset({"now", "utcnow", "today"})


def _module_matches(module: SourceModule, prefixes: Tuple[str, ...]) -> bool:
    relative = module.package_relative()
    return any(
        relative == prefix or relative.startswith(prefix + ".") for prefix in prefixes
    )


class _RandomVisitor(RuleVisitor):
    """D001: ambient-randomness detector."""

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib 'random' draws from hidden global state; thread a "
                    "seeded np.random.Generator through instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.report(
                node,
                "stdlib 'random' draws from hidden global state; thread a "
                "seeded np.random.Generator through instead",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            # random.<fn>(...) on the stdlib module object.
            if isinstance(base, ast.Name) and base.id == "random":
                self.report(
                    node,
                    f"module-level random.{func.attr}() call; draw from a "
                    "seeded np.random.Generator instead",
                )
            # np.random.<legacy fn>(...) on the hidden global generator.
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
                and func.attr in NUMPY_LEGACY_GLOBALS
            ):
                self.report(
                    node,
                    f"np.random.{func.attr}() uses NumPy's global generator; "
                    "use np.random.default_rng(seed) / a passed-in Generator",
                )
            # default_rng() without a seed argument.
            elif func.attr == "default_rng" and not node.args and not node.keywords:
                self.report(
                    node,
                    "unseeded default_rng() is not reproducible; derive the "
                    "generator from the spec's seed coordinates (or waive a "
                    "documented escape with # repro: allow-random[reason])",
                )
        self.generic_visit(node)


class _WallClockVisitor(RuleVisitor):
    """D002: wall-clock detector."""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                func.attr in _WALL_CLOCK_TIME_ATTRS
                and isinstance(base, ast.Name)
                and base.id in ("time", "_time")
            ):
                self.report(
                    node,
                    f"wall-clock read time.{func.attr}() outside the telemetry "
                    "allowlist; simulated time must come from the event queue / "
                    "spec, wall time belongs in repro.obs or repro.bench",
                )
            elif func.attr in _WALL_CLOCK_DATE_ATTRS and (
                (isinstance(base, ast.Name) and base.id in ("datetime", "date"))
                or (
                    isinstance(base, ast.Attribute)
                    and base.attr in ("datetime", "date")
                )
            ):
                self.report(
                    node,
                    f"wall-clock read {ast.unparse(func)}() outside the "
                    "telemetry allowlist; timestamps in records break "
                    "byte-identical reproduction",
                )
        self.generic_visit(node)


class _JsonDumpsVisitor(RuleVisitor):
    """D003: non-canonical ``json.dumps`` detector."""

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "dumps"
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ):
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not sorted_keys:
                self.report(
                    node,
                    "json.dumps without sort_keys=True: key order (and any "
                    "hash of the output) then depends on dict construction "
                    "order; use repro.engines.base.canonical_json for "
                    "record/hash payloads, or pass sort_keys=True",
                )
        self.generic_visit(node)


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


class _FloatEqVisitor(RuleVisitor):
    """D004: float equality in hot paths."""

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, operator in enumerate(node.ops):
            if isinstance(operator, (ast.Eq, ast.NotEq)):
                if _is_floatish(operands[index]) or _is_floatish(operands[index + 1]):
                    self.report(
                        node,
                        "exact float ==/!= in a solver/DES hot path; "
                        "accumulated delay arithmetic makes exact equality a "
                        "boundary bug -- compare with a tolerance or "
                        "restructure the guard",
                    )
                    break
        self.generic_visit(node)


def _run_visitor(
    context: CheckContext,
    visitor_type,
    rule_id: str,
    severity: str = "error",
    modules=None,
) -> Iterator[Finding]:
    for module in modules if modules is not None else context.modules:
        for line, message in visitor_type(module).run():
            yield Finding(
                rule=rule_id,
                severity=severity,
                path=module.rel_path,
                line=line,
                message=message,
            )


@register_rule(
    id="D001",
    name="determinism-random",
    severity="error",
    waiver="random",
    doc=(
        "No ambient randomness: stdlib random, NumPy's legacy global RNG and "
        "unseeded default_rng() are banned; randomness flows from the seeded "
        "Generator the spec's (entropy, run_index) coordinates derive.  Waive "
        "documented escapes with # repro: allow-random[reason]."
    ),
)
def check_random(context: CheckContext) -> Iterator[Finding]:
    return _run_visitor(context, _RandomVisitor, "D001")


@register_rule(
    id="D002",
    name="determinism-wall-clock",
    severity="error",
    waiver="wall-clock",
    doc=(
        "Wall-clock reads (time.time/monotonic/perf_counter, datetime.now) are "
        "confined to the telemetry modules (repro.obs, repro.bench, campaign "
        "progress/wall-time accounting); result-producing code takes simulated "
        "time as data.  Waive with # repro: allow-wall-clock[reason]."
    ),
)
def check_wall_clock(context: CheckContext) -> Iterator[Finding]:
    modules = [
        module
        for module in context.modules
        if not _module_matches(module, WALL_CLOCK_ALLOWED_PREFIXES)
    ]
    return _run_visitor(context, _WallClockVisitor, "D002", modules=modules)


@register_rule(
    id="D003",
    name="determinism-canonical-json",
    severity="error",
    waiver="json-dumps",
    doc=(
        "Every json.dumps must pass sort_keys=True (records, stores, hashes "
        "and artifacts all canonicalise key order); "
        "repro.engines.base.canonical_json is the preferred spelling for "
        "anything that gets hashed.  Waive with # repro: allow-json-dumps[reason]."
    ),
)
def check_canonical_json(context: CheckContext) -> Iterator[Finding]:
    return _run_visitor(context, _JsonDumpsVisitor, "D003")


@register_rule(
    id="D004",
    name="determinism-float-eq",
    severity="error",
    waiver="float-eq",
    doc=(
        "Exact ==/!= against float literals or float() coercions is banned in "
        "the solver/DES hot-path modules (core.pulse_solver, simulation.*, "
        "engines.solver/des): accumulated delay arithmetic makes exact "
        "equality a boundary bug.  Waive with # repro: allow-float-eq[reason]."
    ),
)
def check_float_eq(context: CheckContext) -> Iterator[Finding]:
    modules = [
        module
        for module in context.modules
        if _module_matches(module, HOT_PATH_MODULES)
    ]
    return _run_visitor(context, _FloatEqVisitor, "D004", modules=modules)
