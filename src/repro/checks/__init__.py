"""Contract-enforcing static analysis for the reproduction codebase.

``repro.checks`` is the repo's own linter: a small AST-visitor framework plus
rule registry (mirroring :mod:`repro.engines` / :mod:`repro.topologies`) that
enforces the contracts the test suite cannot see -- the layering DAG,
determinism hygiene, content-key stability and the single-source artifact
schema registry.  ``hex-repro check`` runs it; CI runs it as a blocking gate.

Rule bodies live in their family modules and self-register on import;
:func:`load_builtin_rules` imports them all (idempotently), mirroring
``repro.bench.load_builtin_suites``.  :mod:`repro.checks.schemas` is the one
runtime-facing piece: a dependency-free registry of artifact schema strings
that every layer may import.
"""

from repro.checks.findings import SEVERITIES, Finding
from repro.checks.registry import (
    CheckContext,
    CheckReport,
    Rule,
    available_rules,
    default_root,
    get_rule,
    register_rule,
    run_checks,
    unregister_rule,
)
from repro.checks.schemas import SCHEMAS, schema
from repro.checks.source import RuleVisitor, SourceModule, Waiver, scan_package

__all__ = [
    "SEVERITIES",
    "Finding",
    "Rule",
    "CheckContext",
    "CheckReport",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "available_rules",
    "run_checks",
    "default_root",
    "SCHEMAS",
    "schema",
    "RuleVisitor",
    "SourceModule",
    "Waiver",
    "scan_package",
    "load_builtin_rules",
]


def load_builtin_rules() -> None:
    """Import every built-in rule module (registering its rules); idempotent."""
    from repro.checks import artifacts, contentkeys, determinism, layering  # noqa: F401
