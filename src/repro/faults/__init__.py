"""Fault-injection substrate: Byzantine / fail-silent / crash faults and placement.

* :mod:`repro.faults.models` -- the fault taxonomy used by the paper's
  testbench (Section 4.1, item 4): per-link constant-0 / constant-1 behaviour,
  fail-silent nodes, crash faults, and broken individual links.
* :mod:`repro.faults.placement` -- Condition 1 (fault separation), forbidden
  regions, random placement under Condition 1 and the probability bound the
  paper derives for it.
"""

from repro.faults.models import FaultModel, FaultType, LinkBehavior, NodeFault
from repro.faults.placement import (
    check_condition1,
    condition1_probability_lower_bound,
    condition1_violations,
    forbidden_region,
    place_faults,
)

__all__ = [
    "FaultType",
    "LinkBehavior",
    "NodeFault",
    "FaultModel",
    "check_condition1",
    "condition1_violations",
    "forbidden_region",
    "place_faults",
    "condition1_probability_lower_bound",
]
