"""Fault models for HEX nodes and links.

The paper's simulation framework (Section 4.1) injects faults at the level of
individual *links*:

    "links can be declared correct, Byzantine (choose output constant 0 resp. 1
    corresponding to no resp. fast triggering), or fail-silent (output constant
    0); declaring a node Byzantine or fail-silent is equivalent to doing so for
    each of its outgoing links."

We mirror this exactly:

* :class:`LinkBehavior` captures what a single directed link does:
  ``CORRECT`` (delivers trigger messages with a delay in ``[d-, d+]``),
  ``CONSTANT_ZERO`` (never delivers anything -- a stuck-at-0 output or broken
  wire), or ``CONSTANT_ONE`` (the output is stuck high, so the receiving node's
  memory flag for this link is set as soon as -- and whenever -- it is able to
  memorize, i.e. "fast triggering").

* :class:`NodeFault` groups per-link behaviours for one faulty node.
  Convenience constructors create fail-silent nodes (all outgoing links
  ``CONSTANT_ZERO``), fully random Byzantine nodes (each outgoing link
  independently ``CONSTANT_ZERO`` or ``CONSTANT_ONE`` as in the paper's runs),
  and crash faults (correct until a crash time, silent afterwards).

* :class:`FaultModel` is the container consulted by both execution engines
  (the discrete-event simulator and the analytic pulse solver) and by the
  analysis code (which must exclude faulty nodes from skew statistics).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.core.topology import HexGrid, LinkId, NodeId

__all__ = ["FaultType", "LinkBehavior", "NodeFault", "FaultModel"]


class FaultType(enum.Enum):
    """High-level classification of a faulty node."""

    #: Arbitrary behaviour; modelled per outgoing link as constant-0/constant-1
    #: (the paper's testbench), optionally refined by an adversary strategy in
    #: the discrete-event simulator.
    BYZANTINE = "byzantine"
    #: The node never sends anything (all outgoing links constant-0).
    FAIL_SILENT = "fail_silent"
    #: The node behaves correctly until ``crash_time`` and is silent afterwards.
    CRASH = "crash"


class LinkBehavior(enum.Enum):
    """Behaviour of a single directed link."""

    #: The link delivers trigger messages of its (correct) source faithfully.
    CORRECT = "correct"
    #: Output stuck at 0: no trigger message is ever delivered on this link.
    CONSTANT_ZERO = "constant_zero"
    #: Output stuck at 1: the receiver perceives a trigger message on this link
    #: whenever its memory flag for the link is clear ("fast triggering").
    CONSTANT_ONE = "constant_one"


@dataclass(frozen=True)
class NodeFault:
    """The fault affecting one node.

    Attributes
    ----------
    node:
        The faulty node.
    fault_type:
        Byzantine, fail-silent or crash.
    link_behaviors:
        Mapping from destination node to the behaviour of the outgoing link
        ``(node, destination)``.  For crash faults this describes the behaviour
        *after* the crash (before the crash the node behaves correctly).
    crash_time:
        Time of the crash for :attr:`FaultType.CRASH`; ``inf`` otherwise.
    """

    node: NodeId
    fault_type: FaultType
    link_behaviors: Mapping[NodeId, LinkBehavior] = field(default_factory=dict)
    crash_time: float = math.inf

    def __post_init__(self) -> None:
        # Validate at *construction*, not only in the convenience constructors:
        # schedule-driven crash events build NodeFault directly, and a negative
        # crash time would silently mean "crashed before the run started".
        if math.isnan(self.crash_time) or self.crash_time < 0:
            raise ValueError(f"crash time must be non-negative, got {self.crash_time}")
        if self.fault_type is not FaultType.CRASH and math.isfinite(self.crash_time):
            raise ValueError(
                f"crash_time is only meaningful for CRASH faults, got "
                f"{self.crash_time} for a {self.fault_type.value} fault"
            )

    def behavior_towards(self, destination: NodeId) -> LinkBehavior:
        """The behaviour of the outgoing link towards ``destination``.

        Unlisted destinations default to ``CONSTANT_ZERO`` (silence), which is
        the conservative interpretation for a faulty sender.
        """
        return self.link_behaviors.get(destination, LinkBehavior.CONSTANT_ZERO)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def fail_silent(grid: HexGrid, node: NodeId) -> "NodeFault":
        """A fail-silent node: all outgoing links constant-0."""
        node = grid.validate_node(node)
        behaviors = {
            dest: LinkBehavior.CONSTANT_ZERO for dest in grid.out_neighbors(node).values()
        }
        return NodeFault(node=node, fault_type=FaultType.FAIL_SILENT, link_behaviors=behaviors)

    @staticmethod
    def byzantine(
        grid: HexGrid,
        node: NodeId,
        behaviors: Optional[Mapping[NodeId, LinkBehavior]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "NodeFault":
        """A Byzantine node with per-outgoing-link constant-0/constant-1 behaviour.

        If ``behaviors`` is omitted, each outgoing link independently becomes
        ``CONSTANT_ZERO`` or ``CONSTANT_ONE`` with probability 1/2, matching the
        paper's randomized fault behaviour ("each Byzantine node randomly
        selects its behavior on each outgoing link as either constant 0 ... or
        constant 1").  In that case an ``rng`` must be supplied.
        """
        node = grid.validate_node(node)
        destinations = list(grid.out_neighbors(node).values())
        if behaviors is None:
            if rng is None:
                raise ValueError("either explicit behaviors or an rng must be supplied")
            choices = rng.integers(0, 2, size=len(destinations))
            behaviors = {
                dest: (LinkBehavior.CONSTANT_ONE if pick else LinkBehavior.CONSTANT_ZERO)
                for dest, pick in zip(destinations, choices)
            }
        else:
            unknown = set(behaviors) - set(destinations)
            if unknown:
                raise ValueError(
                    f"behaviors specified for non-out-neighbours of {node}: {sorted(unknown)}"
                )
            behaviors = dict(behaviors)
            for dest in destinations:
                behaviors.setdefault(dest, LinkBehavior.CONSTANT_ZERO)
        return NodeFault(node=node, fault_type=FaultType.BYZANTINE, link_behaviors=behaviors)

    @staticmethod
    def crash(grid: HexGrid, node: NodeId, crash_time: float) -> "NodeFault":
        """A crash fault: correct until ``crash_time``, silent afterwards."""
        if crash_time < 0:
            raise ValueError(f"crash time must be non-negative, got {crash_time}")
        node = grid.validate_node(node)
        behaviors = {
            dest: LinkBehavior.CONSTANT_ZERO for dest in grid.out_neighbors(node).values()
        }
        return NodeFault(
            node=node,
            fault_type=FaultType.CRASH,
            link_behaviors=behaviors,
            crash_time=crash_time,
        )


class FaultModel:
    """The set of faults injected into one simulation run.

    A :class:`FaultModel` combines faulty *nodes* (each with per-outgoing-link
    behaviour) and individually faulty *links* whose source node is otherwise
    correct (broken wires).  It is consulted by the simulation engines to decide
    what each link delivers, and by the analysis code to exclude faulty nodes
    from the skew statistics.

    Parameters
    ----------
    grid:
        The HEX grid the faults live in.
    node_faults:
        Faulty nodes.
    link_faults:
        Mapping from directed link to its (non-correct) behaviour, for links
        whose source node is correct.
    """

    def __init__(
        self,
        grid: HexGrid,
        node_faults: Iterable[NodeFault] = (),
        link_faults: Optional[Mapping[LinkId, LinkBehavior]] = None,
    ) -> None:
        self._grid = grid
        self._node_faults: Dict[NodeId, NodeFault] = {}
        for fault in node_faults:
            self.add_node_fault(fault)
        self._link_faults: Dict[LinkId, LinkBehavior] = {}
        if link_faults:
            for link, behavior in link_faults.items():
                self.add_link_fault(link, behavior)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fault_free(cls, grid: HexGrid) -> "FaultModel":
        """A fault model with no faults at all."""
        return cls(grid)

    def add_node_fault(self, fault: NodeFault) -> None:
        """Register a faulty node (replacing any previous fault on that node)."""
        node = self._grid.validate_node(fault.node)
        self._node_faults[node] = fault

    def remove_node_fault(self, node: NodeId) -> Optional[NodeFault]:
        """De-register a faulty node (a schedule-driven *heal* event).

        The node behaves correctly again from the moment of removal: crash
        faults lose their ``crash_time`` along with the fault entry, so
        :meth:`link_behavior` and the engines' activity checks see a correct
        node regardless of any previously recorded crash.  Returns the removed
        fault, or ``None`` when the node was not faulty.
        """
        return self._node_faults.pop(self._grid.validate_node(node), None)

    def add_link_fault(self, link: LinkId, behavior: LinkBehavior) -> None:
        """Register an individually faulty link (source node otherwise correct)."""
        source, destination = link
        source = self._grid.validate_node(source)
        destination = self._grid.validate_node(destination)
        if destination not in self._grid.out_neighbors(source).values():
            raise ValueError(f"{(source, destination)} is not a link of {self._grid!r}")
        if behavior is LinkBehavior.CORRECT:
            self._link_faults.pop((source, destination), None)
        else:
            self._link_faults[(source, destination)] = behavior

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def grid(self) -> HexGrid:
        """The grid this fault model refers to."""
        return self._grid

    @property
    def num_faulty_nodes(self) -> int:
        """Number of faulty nodes ``f``."""
        return len(self._node_faults)

    def faulty_nodes(self) -> List[NodeId]:
        """The faulty nodes, sorted by (layer, column)."""
        return sorted(self._node_faults)

    def faulty_links(self) -> List[LinkId]:
        """The individually faulty links (excluding links of faulty nodes)."""
        return sorted(self._link_faults)

    def node_fault(self, node: NodeId) -> Optional[NodeFault]:
        """The fault affecting ``node``, or ``None`` if the node is correct."""
        return self._node_faults.get(self._grid.validate_node(node))

    def is_faulty(self, node: NodeId) -> bool:
        """Whether ``node`` is faulty (Byzantine, fail-silent or crash)."""
        return self._grid.validate_node(node) in self._node_faults

    def is_correct(self, node: NodeId) -> bool:
        """Whether ``node`` is correct."""
        return not self.is_faulty(node)

    def correct_nodes(self) -> List[NodeId]:
        """All correct nodes of the grid."""
        return [node for node in self._grid.nodes() if node not in self._node_faults]

    def faulty_layers(self) -> List[int]:
        """The sorted list of layers containing at least one faulty node.

        Used by the Lemma 5 bound, which charges one ``d+`` per layer containing
        a fault.
        """
        return sorted({layer for (layer, _column) in self._node_faults})

    def num_faulty_layers_up_to(self, layer: int) -> int:
        """Number of layers ``<= layer`` containing at least one faulty node (``f_l``)."""
        return sum(1 for fault_layer in self.faulty_layers() if fault_layer <= layer)

    def link_behavior(self, link: LinkId, time: float = math.inf) -> LinkBehavior:
        """The effective behaviour of a directed link at a given time.

        For crash faults the behaviour is ``CORRECT`` before the crash time and
        the registered post-crash behaviour afterwards.  ``time`` defaults to
        ``inf`` so that, without an explicit time, the *eventual* behaviour is
        reported (which is what the single-pulse analytic solver needs when the
        crash happened before the pulse).
        """
        source, destination = link
        source = self._grid.validate_node(source)
        destination = self._grid.validate_node(destination)
        fault = self._node_faults.get(source)
        if fault is not None:
            if fault.fault_type is FaultType.CRASH and time < fault.crash_time:
                return LinkBehavior.CORRECT
            return fault.behavior_towards(destination)
        return self._link_faults.get((source, destination), LinkBehavior.CORRECT)

    def correctness_mask(self) -> np.ndarray:
        """Boolean array of shape ``(L + 1, W)``: ``True`` where the node is correct.

        This is the mask the analysis code applies before computing skew
        statistics ("the triggering times of faulty nodes are of course not
        considered when computing the inter- and intra-layer skews").
        """
        mask = np.ones(self._grid.shape, dtype=bool)
        for layer, column in self._node_faults:
            mask[layer, column] = False
        return mask

    def describe(self) -> List[str]:
        """Human-readable one-line descriptions of all faults (for reports)."""
        lines: List[str] = []
        for node in self.faulty_nodes():
            fault = self._node_faults[node]
            if fault.fault_type is FaultType.CRASH:
                lines.append(f"{node}: crash at t={fault.crash_time:g}")
            else:
                behaviors = ", ".join(
                    f"->{dest}:{behavior.value}" for dest, behavior in sorted(fault.link_behaviors.items())
                )
                lines.append(f"{node}: {fault.fault_type.value} ({behaviors})")
        for link in self.faulty_links():
            lines.append(f"link {link[0]}->{link[1]}: {self._link_faults[link].value}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultModel(nodes={len(self._node_faults)}, links={len(self._link_faults)}, "
            f"grid={self._grid!r})"
        )
