"""Fault placement under Condition 1 (fault separation).

Condition 1 of the paper states:

    "For each node, no more than one of its incoming links connects to a faulty
    neighbor."

The paper notes that this is equivalent to declaring, for each faulty node, all
other nodes that are in-neighbours of some node who has the faulty node as its
in-neighbour (up to 12 nodes) as a *forbidden region* for additional faults,
and that placing ``f`` faults uniformly at random in a grid of ``n`` nodes
satisfies the condition with probability at least ``(1 - 13(f - 1)/n)^f``;
in expectation a uniformly random subset of ``Theta(sqrt(n))`` nodes may fail
before it is violated.

This module provides:

* :func:`check_condition1` / :func:`condition1_violations` -- verify the
  condition for a given set of faulty nodes;
* :func:`forbidden_region` -- the exclusion zone of a faulty node;
* :func:`place_faults` -- rejection-free random placement under Condition 1
  (draw nodes uniformly among those still allowed), as used for the
  fault-injection experiments of Section 4.3;
* :func:`condition1_probability_lower_bound` -- the paper's closed-form bound.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.topology import HexGrid, NodeId
from repro.faults.models import FaultModel, FaultType, NodeFault
from repro.topologies import condition1_fault_capacity
from repro.topologies.base import condition1_forbidden_region

__all__ = [
    "check_condition1",
    "condition1_violations",
    "forbidden_region",
    "place_faults",
    "build_fault_model",
    "condition1_probability_lower_bound",
    "condition1_fault_capacity",
]


def condition1_violations(
    grid: HexGrid, faulty_nodes: Iterable[NodeId]
) -> List[Tuple[NodeId, List[NodeId]]]:
    """All violations of Condition 1 for a given fault set.

    Returns
    -------
    list of (node, faulty_in_neighbours)
        One entry per grid node that has *two or more* faulty in-neighbours,
        together with the sorted list of those faulty in-neighbours.  An empty
        list means Condition 1 holds.
    """
    faulty = {grid.validate_node(node) for node in faulty_nodes}
    violations: List[Tuple[NodeId, List[NodeId]]] = []
    for node in grid.nodes():
        faulty_in = sorted(
            neighbor for neighbor in grid.in_neighbors(node).values() if neighbor in faulty
        )
        if len(faulty_in) > 1:
            violations.append((node, faulty_in))
    return violations


def check_condition1(grid: HexGrid, faulty_nodes: Iterable[NodeId]) -> bool:
    """Whether Condition 1 (fault separation) holds for the given fault set."""
    return not condition1_violations(grid, faulty_nodes)


def forbidden_region(grid: HexGrid, faulty_node: NodeId) -> Set[NodeId]:
    """The exclusion zone a faulty node imposes on further faults.

    A second fault at node ``v`` would violate Condition 1 exactly if some grid
    node has both ``faulty_node`` and ``v`` among its in-neighbours.  The
    forbidden region therefore consists of all in-neighbours (other than
    ``faulty_node`` itself) of all out-neighbours of ``faulty_node`` -- up to 12
    nodes, as stated in the paper.

    The faulty node itself is *not* part of the returned set.  Delegates to
    :func:`repro.topologies.condition1_forbidden_region` (the single home of
    the exclusion-zone logic, shared with the greedy capacity bound).
    """
    return condition1_forbidden_region(grid, grid.validate_node(faulty_node))


def place_faults(
    grid: HexGrid,
    num_faults: int,
    rng: np.random.Generator,
    include_layer0: bool = False,
    exclude: Iterable[NodeId] = (),
    max_attempts: int = 10_000,
) -> List[NodeId]:
    """Place ``num_faults`` faulty nodes uniformly at random under Condition 1.

    The placement mimics the paper's experiments: "f faulty nodes were placed
    uniformly at random under the constraint that Condition 1 held".  Nodes are
    drawn one at a time uniformly among the still-admissible candidates; if the
    admissible set becomes empty before all faults are placed, the whole
    placement is retried (up to ``max_attempts`` times).

    Parameters
    ----------
    grid:
        The HEX grid.
    num_faults:
        The number of faulty nodes ``f`` to place.
    rng:
        Seeded random generator.
    include_layer0:
        Whether layer-0 clock sources may be selected.  The skew/stabilization
        experiments of the paper place faults among the forwarding nodes, so
        this defaults to ``False``.
    exclude:
        Additional nodes that must stay correct (e.g. deterministic fault
        positions already fixed by the experiment).
    max_attempts:
        Safety bound on whole-placement retries.

    Returns
    -------
    list of NodeId
        The faulty nodes, sorted by (layer, column).

    Raises
    ------
    RuntimeError
        If no admissible placement was found within ``max_attempts`` retries
        (only plausible when ``num_faults`` is far beyond the grid's capacity).
    """
    if num_faults < 0:
        raise ValueError(f"num_faults must be non-negative, got {num_faults}")
    if num_faults == 0:
        return []

    base_candidates = [
        node
        for node in grid.nodes()
        if (include_layer0 or node[0] > 0) and grid.validate_node(node) not in set(exclude)
    ]
    if num_faults > len(base_candidates):
        raise ValueError(
            f"cannot place {num_faults} faults among {len(base_candidates)} candidate nodes"
        )

    for _attempt in range(max_attempts):
        admissible = set(base_candidates)
        placed: List[NodeId] = []
        failed = False
        for _ in range(num_faults):
            if not admissible:
                failed = True
                break
            pool = sorted(admissible)
            choice = pool[int(rng.integers(0, len(pool)))]
            placed.append(choice)
            # Remove the forbidden region of the new fault, the fault itself,
            # and every node whose forbidden region contains an already placed
            # fault (symmetric condition).
            admissible.discard(choice)
            for banned in forbidden_region(grid, choice):
                admissible.discard(banned)
        if failed:
            continue
        assert check_condition1(grid, placed), "internal error: placement violates Condition 1"
        return sorted(placed)
    # Compute the topology's deterministic packing bound only on the failure
    # path (it is O(n) forbidden-region sweeps) to make the error actionable:
    # minimum-size and rim-heavy grids used to fail here with no hint of what
    # the topology can actually host.
    capacity = condition1_fault_capacity(grid, include_layer0=include_layer0)
    raise RuntimeError(
        f"could not place {num_faults} faults under Condition 1 within "
        f"{max_attempts} attempts on {grid!r}; the deterministic greedy packing "
        f"of this topology hosts {capacity} fault(s) -- lower num_faults to at "
        f"most that, or use a larger (or less damaged / wrap-around) grid"
    )


def build_fault_model(
    grid: HexGrid,
    num_faults: int,
    fault_type: Optional[FaultType],
    rng: np.random.Generator,
    fixed_positions: Optional[Sequence[NodeId]] = None,
) -> Optional[FaultModel]:
    """Place and parameterise the faults of one simulation run.

    This is the per-run fault-injection step shared by the experiment harness
    and the campaign runner: positions are placed uniformly at random under
    Condition 1 (or taken from ``fixed_positions``), then per-link behaviour
    is drawn for Byzantine nodes.  The ``rng`` consumption order (placement
    first, then behaviour, node by node in sorted position order) is part of
    the reproducibility contract -- changing it changes every seeded result.

    Returns ``None`` for fault-free runs (``num_faults == 0`` or no type).
    """
    if num_faults == 0 or fault_type is None:
        return None
    if fixed_positions is not None:
        if len(fixed_positions) != num_faults:
            raise ValueError(
                f"expected {num_faults} fixed fault positions, got {len(fixed_positions)}"
            )
        positions = [grid.validate_node(node) for node in fixed_positions]
    else:
        positions = place_faults(grid, num_faults, rng)
    faults: List[NodeFault] = []
    for node in positions:
        if fault_type is FaultType.BYZANTINE:
            faults.append(NodeFault.byzantine(grid, node, rng=rng))
        elif fault_type is FaultType.FAIL_SILENT:
            faults.append(NodeFault.fail_silent(grid, node))
        else:
            raise ValueError(f"unsupported fault type for random runs: {fault_type}")
    return FaultModel(grid, faults)


def condition1_probability_lower_bound(num_nodes: int, num_faults: int) -> float:
    """The paper's lower bound on the probability that Condition 1 holds.

    For ``f`` faults placed uniformly at random among ``n`` nodes the paper
    bounds the probability that Condition 1 is satisfied from below by
    ``(1 - 13 (f - 1) / n)^f``.

    Values are clipped to ``[0, 1]``; for ``f <= 1`` the bound is exactly 1.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if num_faults < 0:
        raise ValueError(f"num_faults must be non-negative, got {num_faults}")
    if num_faults <= 1:
        return 1.0
    base = 1.0 - 13.0 * (num_faults - 1) / num_nodes
    if base <= 0.0:
        return 0.0
    return float(base**num_faults)
