"""Delay model of the clock-tree baseline.

Every tree edge contributes a wire delay proportional to its length plus a
buffer delay at its downstream node, each subject to a bounded relative
variation (process/voltage/temperature spread, routing detours, buffer
mismatch).  The paper's argument is that in a tree those variations accumulate
along the *disjoint parts* of two root-to-sink paths, which for physically
adjacent sinks served by different top-level subtrees means almost the entire
``Theta(sqrt(n))`` path -- whereas in HEX the relevant uncertainty is the
per-link ``epsilon`` of an ``O(1)``-length wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.clocktree.htree import HTree

__all__ = ["TreeDelayConfig", "sample_element_delays", "nominal_element_delays"]


@dataclass(frozen=True)
class TreeDelayConfig:
    """Delay parameters of the clock tree.

    Attributes
    ----------
    wire_delay_per_unit:
        Nominal wire delay per unit length (same time unit as the HEX model,
        e.g. ns per sink pitch).
    buffer_delay:
        Nominal delay of each clock buffer (one per internal tree node and one
        per sink's local driver).
    relative_variation:
        Half-width of the relative variation: each element's delay is drawn
        uniformly from ``nominal * [1 - v, 1 + v]``.
    """

    wire_delay_per_unit: float = 1.0
    buffer_delay: float = 0.2
    relative_variation: float = 0.05

    def __post_init__(self) -> None:
        if self.wire_delay_per_unit <= 0:
            raise ValueError("wire_delay_per_unit must be positive")
        if self.buffer_delay < 0:
            raise ValueError("buffer_delay must be non-negative")
        if not 0 <= self.relative_variation < 1:
            raise ValueError("relative_variation must lie in [0, 1)")


def nominal_element_delays(tree: HTree, config: TreeDelayConfig) -> Dict[int, float]:
    """Nominal per-edge delay (wire + downstream buffer), keyed by child node index."""
    delays: Dict[int, float] = {}
    for node in tree.nodes():
        if node.parent is None:
            continue
        delays[node.index] = (
            config.wire_delay_per_unit * node.wire_length + config.buffer_delay
        )
    return delays


def sample_element_delays(
    tree: HTree,
    config: TreeDelayConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> Dict[int, float]:
    """Draw per-edge delays with bounded relative variation.

    Returns
    -------
    dict
        Mapping child-node index -> delay of the edge from its parent
        (wire plus the child's buffer), each element independently varied by a
        uniform factor in ``[1 - v, 1 + v]``.
    """
    generator = rng if rng is not None else np.random.default_rng(seed)
    variation = config.relative_variation
    delays: Dict[int, float] = {}
    for node in tree.nodes():
        if node.parent is None:
            continue
        nominal_wire = config.wire_delay_per_unit * node.wire_length
        nominal_buffer = config.buffer_delay
        wire = nominal_wire * float(generator.uniform(1.0 - variation, 1.0 + variation))
        buffer = nominal_buffer * float(generator.uniform(1.0 - variation, 1.0 + variation))
        delays[node.index] = wire + buffer
    return delays
