"""Recursive H-tree construction.

An H-tree distributes a clock from a root driver to ``4^k`` sinks arranged on a
``2^k x 2^k`` array: at every level the current driver is connected, through an
H-shaped wire, to the centres of the four quadrants of its region, which become
the drivers of the next level.  By construction all root-to-sink wire lengths
are identical (which is precisely why H-trees are the canonical zero-nominal-
skew topology) -- but the *physical* wire length of the top-level segments
grows with ``sqrt(n)``, and any delay variation along the long disjoint
root-to-sink paths translates directly into skew between physically adjacent
sinks served by different subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["HTreeNode", "HTree", "build_htree"]


@dataclass
class HTreeNode:
    """One node (buffer or sink) of the H-tree.

    Attributes
    ----------
    index:
        Unique integer id (0 is the root).
    position:
        Physical ``(x, y)`` coordinates in sink-pitch units.
    level:
        Distance from the root in tree levels (root = 0).
    parent:
        Parent node index (``None`` for the root).
    wire_length:
        Manhattan length of the wire from the parent (0 for the root).
    children:
        Child node indices (empty for sinks).
    """

    index: int
    position: Tuple[float, float]
    level: int
    parent: Optional[int] = None
    wire_length: float = 0.0
    children: List[int] = field(default_factory=list)

    @property
    def is_sink(self) -> bool:
        """Whether this node is a leaf (clock sink)."""
        return not self.children


class HTree:
    """An H-tree: nodes, structure and basic geometric queries."""

    def __init__(self, nodes: List[HTreeNode], levels: int) -> None:
        self._nodes = nodes
        self._levels = levels
        self._sinks = [node.index for node in nodes if node.is_sink]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of recursion levels ``k`` (the tree has ``4^k`` sinks)."""
        return self._levels

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes (buffers + sinks)."""
        return len(self._nodes)

    @property
    def num_sinks(self) -> int:
        """Number of sinks, ``4^k``."""
        return len(self._sinks)

    @property
    def root(self) -> HTreeNode:
        """The root driver."""
        return self._nodes[0]

    def node(self, index: int) -> HTreeNode:
        """Node by index."""
        return self._nodes[index]

    def nodes(self) -> Iterator[HTreeNode]:
        """All nodes in index order."""
        return iter(self._nodes)

    def sinks(self) -> List[HTreeNode]:
        """All sinks in index order."""
        return [self._nodes[index] for index in self._sinks]

    def sink_indices(self) -> List[int]:
        """Indices of all sinks."""
        return list(self._sinks)

    def path_to_root(self, index: int) -> List[int]:
        """Node indices from ``index`` up to (and including) the root."""
        path = [index]
        current = self._nodes[index]
        while current.parent is not None:
            path.append(current.parent)
            current = self._nodes[current.parent]
        return path

    def depth(self) -> int:
        """Number of tree edges on a root-to-sink path."""
        if not self._sinks:
            return 0
        return len(self.path_to_root(self._sinks[0])) - 1

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def root_to_sink_wire_length(self, sink_index: int) -> float:
        """Total wire length from the root to a sink (identical for all sinks)."""
        total = 0.0
        for node_index in self.path_to_root(sink_index):
            total += self._nodes[node_index].wire_length
        return total

    def max_segment_length(self) -> float:
        """The longest individual wire segment (the top-level H arms)."""
        return max((node.wire_length for node in self._nodes), default=0.0)

    def sink_grid(self) -> Dict[Tuple[int, int], int]:
        """Map integer sink-array coordinates ``(row, col)`` to sink indices.

        Sinks lie on a regular ``2^k x 2^k`` array; this resolves their array
        coordinates from their physical positions (used to find physically
        adjacent sinks when computing neighbour skew).
        """
        sinks = self.sinks()
        xs = sorted({node.position[0] for node in sinks})
        ys = sorted({node.position[1] for node in sinks})
        x_index = {x: i for i, x in enumerate(xs)}
        y_index = {y: i for i, y in enumerate(ys)}
        return {
            (y_index[node.position[1]], x_index[node.position[0]]): node.index
            for node in sinks
        }


def build_htree(levels: int, span: float = 1.0) -> HTree:
    """Build an H-tree with ``4^levels`` sinks.

    Parameters
    ----------
    levels:
        Number of recursion levels ``k >= 1``.
    span:
        Physical side length of the die; the sink pitch is ``span / 2^levels``.

    Returns
    -------
    HTree
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    if span <= 0:
        raise ValueError(f"span must be positive, got {span}")

    nodes: List[HTreeNode] = [
        HTreeNode(index=0, position=(span / 2.0, span / 2.0), level=0)
    ]
    frontier = [(0, span / 2.0)]
    for level in range(1, levels + 1):
        next_frontier: List[Tuple[int, float]] = []
        for parent_index, half in frontier:
            parent = nodes[parent_index]
            px, py = parent.position
            quarter = half / 2.0
            for dx in (-quarter, quarter):
                for dy in (-quarter, quarter):
                    child = HTreeNode(
                        index=len(nodes),
                        position=(px + dx, py + dy),
                        level=level,
                        parent=parent_index,
                        wire_length=abs(dx) + abs(dy),
                    )
                    nodes.append(child)
                    parent.children.append(child.index)
                    next_frontier.append((child.index, quarter))
        frontier = next_frontier

    return HTree(nodes=nodes, levels=levels)
