"""Arrival times and skew of the clock-tree baseline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clocktree.delays import TreeDelayConfig, sample_element_delays
from repro.clocktree.htree import HTree

__all__ = ["sink_arrival_times", "TreeSkewReport", "tree_skew_report"]


def sink_arrival_times(tree: HTree, element_delays: Dict[int, float]) -> Dict[int, float]:
    """Clock arrival time at every sink, given per-edge delays.

    The arrival time of a node is the sum of the edge delays along its
    root-to-node path (the root fires at time 0).  Computed top-down in one
    pass over the nodes (children always have larger indices than parents by
    construction).
    """
    arrival: Dict[int, float] = {tree.root.index: 0.0}
    for node in tree.nodes():
        if node.parent is None:
            continue
        arrival[node.index] = arrival[node.parent] + element_delays[node.index]
    return {index: arrival[index] for index in tree.sink_indices()}


@dataclass(frozen=True)
class TreeSkewReport:
    """Skew metrics of one clock-tree delay sample.

    Attributes
    ----------
    global_skew:
        Maximum minus minimum sink arrival time.
    max_neighbor_skew:
        Maximum arrival-time difference between physically adjacent sinks
        (left/right and up/down neighbours on the sink array).
    avg_neighbor_skew:
        Average of the same quantity.
    max_neighbor_disjoint_path:
        The largest total wire length of the *disjoint* parts of the
        root-to-sink paths over all physically adjacent sink pairs -- the
        structural source of tree skew the paper's introduction points at.
    nominal_depth:
        Number of buffers on a root-to-sink path.
    """

    global_skew: float
    max_neighbor_skew: float
    avg_neighbor_skew: float
    max_neighbor_disjoint_path: float
    nominal_depth: int


def _neighbor_pairs(tree: HTree) -> List[Tuple[int, int]]:
    """Index pairs of physically adjacent sinks on the sink array."""
    grid = tree.sink_grid()
    pairs: List[Tuple[int, int]] = []
    for (row, col), index in grid.items():
        right = grid.get((row, col + 1))
        up = grid.get((row + 1, col))
        if right is not None:
            pairs.append((index, right))
        if up is not None:
            pairs.append((index, up))
    return pairs


def _disjoint_path_length(tree: HTree, a: int, b: int) -> float:
    """Total wire length of the non-shared parts of two root-to-sink paths."""
    path_a = tree.path_to_root(a)
    path_b = set(tree.path_to_root(b))
    shared = [index for index in path_a if index in path_b]
    lowest_common = shared[0]
    length = 0.0
    for index in path_a:
        if index == lowest_common:
            break
        length += tree.node(index).wire_length
    for index in tree.path_to_root(b):
        if index == lowest_common:
            break
        length += tree.node(index).wire_length
    return length


def tree_skew_report(
    tree: HTree,
    config: TreeDelayConfig,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    element_delays: Optional[Dict[int, float]] = None,
) -> TreeSkewReport:
    """Compute the skew metrics of one delay sample of the tree."""
    if element_delays is None:
        element_delays = sample_element_delays(tree, config, rng=rng, seed=seed)
    arrivals = sink_arrival_times(tree, element_delays)
    values = np.array(list(arrivals.values()), dtype=float)
    pairs = _neighbor_pairs(tree)
    neighbor_skews = np.array(
        [abs(arrivals[a] - arrivals[b]) for a, b in pairs], dtype=float
    )
    disjoint = max((_disjoint_path_length(tree, a, b) for a, b in pairs), default=0.0)
    return TreeSkewReport(
        global_skew=float(values.max() - values.min()),
        max_neighbor_skew=float(neighbor_skews.max()) if neighbor_skews.size else 0.0,
        avg_neighbor_skew=float(neighbor_skews.mean()) if neighbor_skews.size else 0.0,
        max_neighbor_disjoint_path=float(disjoint),
        nominal_depth=tree.depth(),
    )
