"""Robustness of the clock-tree baseline: sinks lost per broken element.

"If just one internal wire or clock buffer in a clock tree breaks, all the
functional units supplied via the affected subtree will stop working
correctly."  This module quantifies that: the number of sinks disconnected by
the failure of any single tree edge/buffer, and summary statistics (worst case,
average over a uniformly random fault) used in the HEX comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.clocktree.htree import HTree

__all__ = ["subtree_sink_counts", "sinks_lost_by_fault", "robustness_report", "TreeRobustnessReport"]


def subtree_sink_counts(tree: HTree) -> Dict[int, int]:
    """Number of sinks in the subtree rooted at every node.

    Computed bottom-up (children have larger indices than their parents by
    construction, so a single reverse sweep suffices).
    """
    counts: Dict[int, int] = {}
    for node in reversed(list(tree.nodes())):
        if node.is_sink:
            counts[node.index] = 1
        else:
            counts[node.index] = sum(counts[child] for child in node.children)
    return counts


def sinks_lost_by_fault(tree: HTree, failed_node: int) -> int:
    """Sinks disconnected when the buffer/wire feeding ``failed_node`` breaks.

    Failing the root means losing every sink (the single-point-of-failure the
    paper's introduction highlights).
    """
    counts = subtree_sink_counts(tree)
    if failed_node not in counts:
        raise ValueError(f"unknown tree node {failed_node}")
    return counts[failed_node]


@dataclass(frozen=True)
class TreeRobustnessReport:
    """Summary of the damage a single element failure causes.

    Attributes
    ----------
    num_sinks:
        Total number of sinks.
    worst_case_lost:
        Sinks lost in the worst case (= all of them, root failure).
    worst_case_internal_lost:
        Sinks lost by the worst non-root internal element (a quarter of the
        die for an H-tree).
    expected_lost:
        Expected sinks lost for a uniformly random single element failure.
    single_fault_tolerated:
        Whether any single fault leaves all sinks clocked (always ``False`` for
        a tree; provided for symmetry with the HEX report).
    """

    num_sinks: int
    worst_case_lost: int
    worst_case_internal_lost: int
    expected_lost: float
    single_fault_tolerated: bool


def robustness_report(tree: HTree) -> TreeRobustnessReport:
    """Compute the single-fault robustness summary of a tree."""
    counts = subtree_sink_counts(tree)
    all_counts = np.array(list(counts.values()), dtype=float)
    internal_non_root = [
        counts[node.index]
        for node in tree.nodes()
        if node.parent is not None and not node.is_sink
    ]
    return TreeRobustnessReport(
        num_sinks=tree.num_sinks,
        worst_case_lost=tree.num_sinks,
        worst_case_internal_lost=max(internal_non_root) if internal_non_root else 1,
        expected_lost=float(all_counts.mean()),
        single_fault_tolerated=False,
    )
