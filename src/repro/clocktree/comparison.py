"""HEX vs clock tree: the scaling study behind the paper's title.

The introduction argues three structural advantages of the HEX grid over a
buffered clock tree of the same size:

1. **Wire length.**  With constant node density, HEX links have length
   ``Theta(1)`` while the top-level arms of an H-tree have length
   ``Theta(sqrt(n))`` -- so HEX needs neither strong buffers nor engineered
   wire geometries to keep the per-link uncertainty ``epsilon`` small.
2. **Neighbour skew.**  HEX bounds the skew between grid neighbours by
   ``O(W epsilon)`` (Theorem 1); in a tree the skew between physically adjacent
   sinks in different subtrees grows with the delay variation accumulated along
   ``Theta(sqrt(n))`` of disjoint path.
3. **Robustness.**  A single broken buffer/wire in a tree disconnects a whole
   subtree (up to all ``n`` sinks); HEX tolerates isolated Byzantine nodes at a
   constant density (in expectation ``Theta(sqrt(n))`` random faults before
   Condition 1 is violated), and a fault's skew impact stays local.

:func:`compare_scaling` quantifies all three as a function of the system size,
using the clock-tree substrate of this subpackage and the HEX bounds/fault
machinery of :mod:`repro.core` and :mod:`repro.faults`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.clocktree.delays import TreeDelayConfig
from repro.clocktree.faults import robustness_report
from repro.clocktree.htree import build_htree
from repro.clocktree.simulation import tree_skew_report
from repro.core.bounds import theorem1_uniform_bound
from repro.core.parameters import TimingConfig

__all__ = ["ScalingComparison", "compare_scaling"]


@dataclass(frozen=True)
class ScalingComparison:
    """One row of the HEX-vs-tree scaling table.

    All HEX quantities assume a roughly square grid with ``W = L ~ sqrt(n)``
    nodes and unit node pitch; all tree quantities are measured on an H-tree
    with ``4^k >= n`` sinks on the same die.
    """

    #: Number of clocked endpoints (HEX nodes / tree sinks).
    num_endpoints: int
    #: HEX grid width used for the comparison (``W ~ sqrt(n)``).
    hex_width: int
    #: Maximum link length in the HEX grid (constant, in sink pitches).
    hex_max_wire_length: float
    #: Longest individual wire segment of the H-tree (in sink pitches).
    tree_max_wire_length: float
    #: Worst-case HEX neighbour skew bound (Theorem 1, Delta_0 = 0).
    hex_neighbor_skew_bound: float
    #: Measured maximum skew between physically adjacent tree sinks.
    tree_max_neighbor_skew: float
    #: Measured average skew between physically adjacent tree sinks.
    tree_avg_neighbor_skew: float
    #: Number of clock buffers on a tree root-to-sink path.
    tree_depth: int
    #: Expected number of uniformly random faulty nodes HEX sustains before
    #: Condition 1 is violated (~ sqrt(n) / 4).
    hex_expected_faults_tolerated: float
    #: Endpoints lost by the worst single non-root tree fault.
    tree_worst_internal_fault_loss: int
    #: Endpoints lost by a single HEX node fault (the fault itself; its skew
    #: impact is confined to the 1-hop out-neighbourhood).
    hex_single_fault_loss: int

    def as_row(self) -> Dict[str, float]:
        """Dictionary form for report rendering."""
        return {
            "n": float(self.num_endpoints),
            "hex_W": float(self.hex_width),
            "hex_max_wire": self.hex_max_wire_length,
            "tree_max_wire": self.tree_max_wire_length,
            "hex_skew_bound": self.hex_neighbor_skew_bound,
            "tree_max_neighbor_skew": self.tree_max_neighbor_skew,
            "tree_avg_neighbor_skew": self.tree_avg_neighbor_skew,
            "tree_depth": float(self.tree_depth),
            "hex_faults_tolerated": self.hex_expected_faults_tolerated,
            "tree_worst_internal_fault_loss": float(self.tree_worst_internal_fault_loss),
            "hex_single_fault_loss": float(self.hex_single_fault_loss),
        }


def compare_scaling(
    tree_levels: Sequence[int] = (2, 3, 4, 5),
    timing: Optional[TimingConfig] = None,
    tree_config: Optional[TreeDelayConfig] = None,
    runs_per_size: int = 5,
    seed: int = 0,
) -> List[ScalingComparison]:
    """Compute the HEX-vs-tree comparison over a sweep of system sizes.

    Parameters
    ----------
    tree_levels:
        H-tree recursion depths ``k``; each yields ``n = 4^k`` endpoints.
    timing:
        HEX delay bounds; defaults to the paper's.  The per-unit wire delay of
        the tree is scaled so that a wire of HEX-link length has delay ``d+``
        (i.e. both systems use the same technology).
    tree_config:
        Tree delay parameters; by default the wire delay per sink pitch equals
        ``d+`` (HEX link = one sink pitch) and the relative variation is
        ``epsilon / d+`` -- the same relative uncertainty the HEX links have.
    runs_per_size:
        Number of random delay samples per tree size (the maximum over the
        samples is reported).
    seed:
        Base seed for the delay samples.
    """
    if timing is None:
        timing = TimingConfig.paper_defaults()
    if tree_config is None:
        tree_config = TreeDelayConfig(
            wire_delay_per_unit=timing.d_max,
            buffer_delay=0.2 * timing.d_max,
            relative_variation=timing.epsilon / timing.d_max,
        )
    rng = np.random.default_rng(seed)

    results: List[ScalingComparison] = []
    for levels in tree_levels:
        tree = build_htree(levels, span=float(2**levels))
        num_endpoints = tree.num_sinks
        hex_width = max(3, int(round(math.sqrt(num_endpoints))))

        max_neighbor = 0.0
        avg_neighbor = 0.0
        for _ in range(runs_per_size):
            report = tree_skew_report(tree, tree_config, rng=rng)
            max_neighbor = max(max_neighbor, report.max_neighbor_skew)
            avg_neighbor += report.avg_neighbor_skew / runs_per_size
        robustness = robustness_report(tree)

        results.append(
            ScalingComparison(
                num_endpoints=num_endpoints,
                hex_width=hex_width,
                hex_max_wire_length=1.0,
                tree_max_wire_length=tree.max_segment_length(),
                hex_neighbor_skew_bound=theorem1_uniform_bound(timing, hex_width),
                tree_max_neighbor_skew=max_neighbor,
                tree_avg_neighbor_skew=avg_neighbor,
                tree_depth=tree.depth(),
                hex_expected_faults_tolerated=math.sqrt(num_endpoints) / 4.0,
                tree_worst_internal_fault_loss=robustness.worst_case_internal_lost,
                hex_single_fault_loss=1,
            )
        )
    return results
