"""Clock-tree baseline substrate (the comparison object of the paper's title).

The introduction of the paper contrasts HEX with buffered clock trees
(H-trees): logarithmic depth but ``Theta(sqrt(n))`` wire length between some
physically adjacent sinks, elaborate engineering to keep the skew below the
target, and a complete lack of fault tolerance (one broken buffer or wire
disconnects a whole subtree).  This subpackage implements that baseline so the
comparison can be *measured*:

* :mod:`repro.clocktree.htree` -- recursive H-tree construction over a square
  sink array.
* :mod:`repro.clocktree.delays` -- per-segment wire / buffer delay model with
  bounded relative variation.
* :mod:`repro.clocktree.simulation` -- arrival times at the sinks, global and
  physically-adjacent-sink skew.
* :mod:`repro.clocktree.faults` -- sinks lost per broken buffer/wire.
* :mod:`repro.clocktree.comparison` -- the HEX-vs-clock-tree scaling study.
"""

from repro.clocktree.comparison import ScalingComparison, compare_scaling
from repro.clocktree.delays import TreeDelayConfig, sample_element_delays
from repro.clocktree.faults import robustness_report, sinks_lost_by_fault, subtree_sink_counts
from repro.clocktree.htree import HTree, HTreeNode, build_htree
from repro.clocktree.simulation import TreeSkewReport, sink_arrival_times, tree_skew_report

__all__ = [
    "HTree",
    "HTreeNode",
    "build_htree",
    "TreeDelayConfig",
    "sample_element_delays",
    "sink_arrival_times",
    "tree_skew_report",
    "TreeSkewReport",
    "subtree_sink_counts",
    "sinks_lost_by_fault",
    "robustness_report",
    "ScalingComparison",
    "compare_scaling",
]
