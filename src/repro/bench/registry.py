"""The benchmark-case registry: ``(suite, name) -> BenchCase``.

Suite modules (:mod:`repro.bench.suites`) register their cases at import
time; :func:`load_builtin_suites` triggers those imports on demand so that
``import repro.bench`` stays cheap (the suites pull in the whole experiments
layer).  Tests register ad-hoc cases the same way and remove them again with
:func:`unregister_case`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.case import BenchCase

__all__ = [
    "register_case",
    "unregister_case",
    "get_case",
    "cases_in_suite",
    "available_suites",
    "load_builtin_suites",
]

_CASES: Dict[Tuple[str, str], BenchCase] = {}


def register_case(case: BenchCase, replace: bool = False) -> BenchCase:
    """Register a case under ``(case.suite, case.name)``.

    Duplicate registrations are an error unless ``replace=True`` (repeated
    imports of the built-in suite modules pass it for idempotency).
    """
    key = (case.suite, case.name)
    if key in _CASES and not replace:
        raise ValueError(
            f"bench case {case.name!r} is already registered in suite "
            f"{case.suite!r}; pass replace=True to override"
        )
    _CASES[key] = case
    return case


def unregister_case(suite: str, name: str) -> None:
    """Remove a case registration (primarily for tests)."""
    _CASES.pop((suite, name), None)


def get_case(suite: str, name: str) -> BenchCase:
    """Look up one case, with an actionable error for unknown names."""
    try:
        return _CASES[(suite, name)]
    except KeyError:
        known = ", ".join(sorted(f"{s}/{n}" for s, n in _CASES)) or "(none registered)"
        raise ValueError(
            f"unknown bench case {suite!r}/{name!r}; registered cases: {known}"
        ) from None


def cases_in_suite(suite: str) -> List[BenchCase]:
    """All cases of one suite, in registration order."""
    return [case for (case_suite, _), case in _CASES.items() if case_suite == suite]


def available_suites() -> Tuple[str, ...]:
    """The registered suite names, sorted."""
    return tuple(sorted({suite for suite, _ in _CASES}))


def load_builtin_suites() -> None:
    """Import the built-in suite modules (idempotent).

    Registration happens as an import side effect; Python's module cache
    makes repeated calls free.
    """
    import repro.bench.suites  # noqa: F401  (import-for-side-effect)
