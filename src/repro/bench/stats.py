"""Robust summary statistics of benchmark timings.

Wall-clock samples on shared hosts are right-skewed (scheduler noise adds,
never subtracts), so the tracked statistics are the robust trio the
regression gate consumes: minimum (the cleanest observation), median (the
compared statistic) and interquartile range (the noise estimate).  Mean and
maximum ride along for context.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["robust_stats"]


def robust_stats(times_s: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a sequence of timed repetitions (in seconds)."""
    samples = np.asarray(times_s, dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one timing sample")
    if not np.all(np.isfinite(samples)) or np.any(samples < 0):
        raise ValueError(f"timing samples must be finite and non-negative: {times_s}")
    q25, q75 = np.percentile(samples, [25.0, 75.0])
    return {
        "min_s": float(samples.min()),
        "median_s": float(np.median(samples)),
        "iqr_s": float(q75 - q25),
        "mean_s": float(samples.mean()),
        "max_s": float(samples.max()),
    }
