"""Campaign suite: orchestration overhead and parallel sweep throughput.

Runs one multi-point single-pulse campaign twice -- serially (which now
dispatches through ``engine.run_batch``) and on a small worker pool -- and
records both wall times, so regressions in the orchestration layer (task
expansion, batch dispatch, record assembly, pool fan-out) show up next to
the simulation-bound benchmarks.  The check asserts the subsystem's core
guarantee inside the benchmarked configuration: canonical records identical
for both execution modes.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec

SUITE = "campaign"


def _spec(settings: BenchSettings) -> CampaignSpec:
    cell = SweepSpec(
        layers=(20, 30),
        width=10,
        scenario=("i", "iii"),
        num_faults=(0, 2),
        runs=max(2, settings.effective_runs() // 2),
        seed_salt=900,
    )
    return CampaignSpec(name="bench-campaign", seed=2013, cells=(cell,))


def _make(settings: BenchSettings):
    spec = _spec(settings)

    def workload() -> Dict[str, Any]:
        start = time.perf_counter()
        serial = CampaignRunner(spec, workers=1).run()
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = CampaignRunner(spec, workers=4).run()
        parallel_wall = time.perf_counter() - start
        return {
            "spec": spec,
            "serial": serial,
            "parallel": parallel,
            "serial_wall_s": serial_wall,
            "parallel4_wall_s": parallel_wall,
        }

    return workload


def _check(result: Dict[str, Any], settings: BenchSettings) -> None:
    spec = result["spec"]
    serial = result["serial"]
    parallel = result["parallel"]
    assert len(serial.records) == spec.num_tasks
    assert [r.canonical_json() for r in serial.records] == [
        r.canonical_json() for r in parallel.records
    ]


def _info(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, float]:
    return {
        "tasks": result["spec"].num_tasks,
        "serial_wall_s": round(result["serial_wall_s"], 3),
        "parallel4_wall_s": round(result["parallel4_wall_s"], 3),
    }


register_case(
    BenchCase(
        name="sweep",
        suite=SUITE,
        make=_make,
        repeats=3,
        quick_repeats=3,
        check=_check,
        quick_check=True,
        info=_info,
    ),
    replace=True,
)
