"""Built-in benchmark suites (imported for their registration side effects).

Each module ports the workload, shape checks and headline numbers of the
historical ``benchmarks/test_bench_*.py`` files onto declarative
:class:`~repro.bench.case.BenchCase` objects:

* :mod:`~repro.bench.suites.solver` -- the single-pulse experiment
  regenerations (Tables 1-3, Figs. 5 and 8-17, Theorem 1, the fault-type
  ablation);
* :mod:`~repro.bench.suites.des` -- the stabilization experiments
  (Figs. 18-19) on the discrete-event engine;
* :mod:`~repro.bench.suites.campaign` -- orchestration overhead and the
  serial/parallel record equality;
* :mod:`~repro.bench.suites.topology` -- neighbour-table cache and
  per-topology solver runs;
* :mod:`~repro.bench.suites.clocktree` -- the HEX vs clock-tree scaling
  comparison (the title claim);
* :mod:`~repro.bench.suites.batch` -- ``Engine.run_batch`` vs per-spec
  execution on a same-grid sweep (the batching speedup gate);
* :mod:`~repro.bench.suites.obs` -- observability overhead: the disabled
  no-op guards, the campaign runner's <5% orchestration bar and the
  fully-instrumented slowdown (with its bit-identity check);
* :mod:`~repro.bench.suites.soak` -- sustained soak-run throughput and the
  per-observation cost of the streaming accumulators (with the GK sketch's
  rank-error bound re-checked against the exact sorted stream).
"""

from repro.bench.suites import (  # noqa: F401  (import-for-side-effect)
    batch,
    campaign,
    clocktree,
    des,
    obs,
    soak,
    solver,
    topology,
)
