"""Observability suite: the cost of having (and not having) ``repro.obs``.

Three tracked cases:

* ``runner_overhead`` -- the campaign runner's orchestration cost with
  observability off (the shipping default), measured against direct
  ``execute_task_batch`` calls over the identical task list.  The full-mode
  check pins the overhead -- which includes every disabled obs guard on the
  hot path -- below 5%, the acceptance bar of the observability PR.
* ``obs_on_overhead`` -- the same seeded sweep with observability fully on
  (metrics + span trace); the check asserts the subsystem's hard contract
  (canonical records byte-identical either way), the info records the
  slowdown factor for the BENCH artifact.
* ``noop_guards`` -- microbenchmark of the disabled ``span``/``inc`` no-op
  guards (nanoseconds per call), so a regression that puts real work on the
  disabled path is visible in isolation.
* ``worker_fanin`` -- a 2-worker parallel campaign with cross-process
  observability fully on vs off; the check asserts record bit-identity plus
  the fan-in products (merged trace, ``worker.*`` counters incl. the
  deterministic work counters), the info records the instrumented slowdown.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Any, Dict, List

from repro import obs
from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.campaign import CampaignRunner, CampaignSpec, SweepSpec
from repro.campaign.runner import execute_task_batch

SUITE = "obs"

#: Serial-path batch size of :class:`CampaignRunner` (its default).
_BATCH_SIZE = 32


def _spec(settings: BenchSettings) -> CampaignSpec:
    cell = SweepSpec(
        layers=(24, 36),
        width=12,
        scenario=("i", "iii"),
        num_faults=0,
        runs=max(4, settings.effective_runs()),
        seed_salt=906,
    )
    return CampaignSpec(name="bench-obs", seed=2013, cells=(cell,))


def _raw_records(spec: CampaignSpec) -> List[Any]:
    """The reference execution: direct batch calls, no runner orchestration."""
    tasks = spec.tasks()
    records: List[Any] = []
    for start in range(0, len(tasks), _BATCH_SIZE):
        records.extend(execute_task_batch(tasks[start : start + _BATCH_SIZE]))
    return records


def _make_runner_overhead(settings: BenchSettings):
    spec = _spec(settings)
    # Warm the global grid / solver-plan caches outside the timed region so
    # the first measured execution does not pay their construction.
    _raw_records(spec)

    def workload() -> Dict[str, Any]:
        assert not obs.enabled()
        start = time.perf_counter()
        raw = _raw_records(spec)
        raw_wall = time.perf_counter() - start
        start = time.perf_counter()
        result = CampaignRunner(spec, workers=1, batch_size=_BATCH_SIZE).run()
        runner_wall = time.perf_counter() - start
        return {
            "spec": spec,
            "raw": raw,
            "result": result,
            "raw_wall_s": raw_wall,
            "runner_wall_s": runner_wall,
        }

    return workload


def _check_runner_overhead(result: Dict[str, Any], settings: BenchSettings) -> None:
    assert [r.canonical_json() for r in result["raw"]] == [
        r.canonical_json() for r in result["result"].records
    ]
    overhead = result["runner_wall_s"] / result["raw_wall_s"] - 1.0
    assert overhead < 0.05, (
        f"campaign-runner overhead {overhead * 100:.1f}% over direct batch "
        f"execution exceeds the 5% observability-PR bar "
        f"(runner {result['runner_wall_s']:.3f}s vs raw {result['raw_wall_s']:.3f}s)"
    )


def _info_runner_overhead(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    return {
        "tasks": result["spec"].num_tasks,
        "raw_wall_s": round(result["raw_wall_s"], 4),
        "runner_wall_s": round(result["runner_wall_s"], 4),
        "overhead_pct": round(
            (result["runner_wall_s"] / result["raw_wall_s"] - 1.0) * 100, 2
        ),
    }


register_case(
    BenchCase(
        name="runner_overhead",
        suite=SUITE,
        make=_make_runner_overhead,
        repeats=3,
        quick_repeats=1,
        check=_check_runner_overhead,
        # Timing-floor check: meaningful on full-mode repeats, too noisy to
        # gate the CI-sized quick run.
        quick_check=False,
        info=_info_runner_overhead,
    ),
    replace=True,
)


def _make_obs_on_overhead(settings: BenchSettings):
    spec = _spec(settings)
    _raw_records(spec)

    def workload() -> Dict[str, Any]:
        start = time.perf_counter()
        off = CampaignRunner(spec, workers=1).run()
        off_wall = time.perf_counter() - start
        handle, trace_path = tempfile.mkstemp(suffix=".jsonl", prefix="hex-obs-bench-")
        os.close(handle)
        try:
            with obs.observed(trace=trace_path):
                start = time.perf_counter()
                on = CampaignRunner(spec, workers=1).run()
                on_wall = time.perf_counter() - start
        finally:
            os.unlink(trace_path)
        return {
            "spec": spec,
            "off": off,
            "on": on,
            "off_wall_s": off_wall,
            "on_wall_s": on_wall,
        }

    return workload


def _check_obs_on_overhead(result: Dict[str, Any], settings: BenchSettings) -> None:
    # The subsystem's hard contract: enabling observability never changes
    # canonical records.  Deterministic, so it gates quick mode too.
    assert [r.canonical_json() for r in result["off"].records] == [
        r.canonical_json() for r in result["on"].records
    ]


def _info_obs_on_overhead(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    return {
        "tasks": result["spec"].num_tasks,
        "off_wall_s": round(result["off_wall_s"], 4),
        "on_wall_s": round(result["on_wall_s"], 4),
        "slowdown_factor": round(result["on_wall_s"] / result["off_wall_s"], 3),
    }


register_case(
    BenchCase(
        name="obs_on_overhead",
        suite=SUITE,
        make=_make_obs_on_overhead,
        repeats=3,
        quick_repeats=1,
        check=_check_obs_on_overhead,
        quick_check=True,
        info=_info_obs_on_overhead,
    ),
    replace=True,
)


def _make_noop_guards(settings: BenchSettings):
    iterations = 200_000 if settings.quick else 1_000_000

    def workload() -> Dict[str, Any]:
        assert not obs.enabled()
        start = time.perf_counter()
        for _ in range(iterations):
            obs.inc("bench.noop")
        inc_wall = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("bench.noop"):
                pass
        span_wall = time.perf_counter() - start
        return {
            "iterations": iterations,
            "inc_ns": inc_wall / iterations * 1e9,
            "span_ns": span_wall / iterations * 1e9,
        }

    return workload


def _info_noop_guards(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    return {
        "iterations": result["iterations"],
        "disabled_inc_ns": round(result["inc_ns"], 1),
        "disabled_span_ns": round(result["span_ns"], 1),
    }


register_case(
    BenchCase(
        name="noop_guards",
        suite=SUITE,
        make=_make_noop_guards,
        repeats=3,
        quick_repeats=1,
        info=_info_noop_guards,
    ),
    replace=True,
)


def _fanin_spec(settings: BenchSettings) -> CampaignSpec:
    # Single-cell spec: fork/teardown cost dominates a 2-worker pool, so the
    # sweep itself stays small and the case measures the fan-in machinery.
    cell = SweepSpec(
        layers=(24,),
        width=12,
        scenario=("i",),
        num_faults=0,
        runs=max(4, settings.effective_runs()),
        seed_salt=907,
    )
    return CampaignSpec(name="bench-obs-fanin", seed=2013, cells=(cell,))


def _make_worker_fanin(settings: BenchSettings):
    spec = _fanin_spec(settings)
    CampaignRunner(spec, workers=1).run()  # warm grid/plan caches in-process

    def workload() -> Dict[str, Any]:
        assert not obs.enabled()
        start = time.perf_counter()
        off = CampaignRunner(spec, workers=2).run()
        off_wall = time.perf_counter() - start
        shard_dir = tempfile.mkdtemp(prefix="hex-obs-fanin-")
        trace_path = os.path.join(shard_dir, "fanin-trace.jsonl")
        try:
            with obs.observed(trace=trace_path) as session:
                start = time.perf_counter()
                on = CampaignRunner(spec, workers=2).run()
                on_wall = time.perf_counter() - start
                counters = dict(session.registry.snapshot()["counters"])
            header, _ = obs.load_trace(trace_path)
        finally:
            shutil.rmtree(shard_dir, ignore_errors=True)
        return {
            "spec": spec,
            "off": off,
            "on": on,
            "off_wall_s": off_wall,
            "on_wall_s": on_wall,
            "counters": counters,
            "merged": bool(header.get("merged")),
            "num_shards": int(header.get("num_shards", 0)),
        }

    return workload


def _check_worker_fanin(result: Dict[str, Any], settings: BenchSettings) -> None:
    # Cross-process contract, all deterministic so it gates quick mode too:
    # records identical either way, worker shards folded into one trace, and
    # the workers' engine-level counters (incl. the deterministic work
    # counters) fanned back in under the worker.* provenance prefix.
    assert [r.canonical_json() for r in result["off"].records] == [
        r.canonical_json() for r in result["on"].records
    ]
    assert result["merged"], "parallel trace was not merged from worker shards"
    counters = result["counters"]
    tasks = result["spec"].num_tasks
    assert counters.get("worker.campaign.tasks_executed") == tasks, (
        f"expected worker.campaign.tasks_executed == {tasks}, "
        f"got {counters.get('worker.campaign.tasks_executed')}"
    )
    for name in (
        "worker.solver.heap_pushes",
        "worker.solver.frontier_advances",
        "worker.solver.messages_delivered",
    ):
        assert counters.get(name, 0) > 0, f"missing merged work counter {name}"


def _info_worker_fanin(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    counters = result["counters"]
    return {
        "tasks": result["spec"].num_tasks,
        "num_shards": result["num_shards"],
        "off_wall_s": round(result["off_wall_s"], 4),
        "on_wall_s": round(result["on_wall_s"], 4),
        "slowdown_factor": round(result["on_wall_s"] / result["off_wall_s"], 3),
        "worker_heap_pushes": counters.get("worker.solver.heap_pushes", 0),
        "worker_messages_delivered": counters.get(
            "worker.solver.messages_delivered", 0
        ),
    }


register_case(
    BenchCase(
        name="worker_fanin",
        suite=SUITE,
        make=_make_worker_fanin,
        repeats=3,
        quick_repeats=1,
        check=_check_worker_fanin,
        quick_check=True,
        info=_info_worker_fanin,
    ),
    replace=True,
)
