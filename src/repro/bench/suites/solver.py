"""Solver suite: the single-pulse experiment regenerations.

One case per table/figure of the paper's single-pulse evaluation, each
carrying the shape checks of its historical ``benchmarks/test_bench_*.py``
module: the measured numbers must stay in the published regime, not merely
execute.  All cases run the analytic solver engine through the experiments
layer on the paper's 50x20 grid; quick mode shrinks the Monte Carlo run
counts only.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from repro.analysis.histograms import tail_fraction
from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.clocksource.scenarios import SCENARIOS, Scenario
from repro.experiments import (
    ablation_faulttype,
    fig05,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    table2,
    table3,
    theorem1,
)
from repro.faults.models import FaultType  # noqa: F401  (re-export convenience)

SUITE = "solver"


def _case(
    name: str,
    make,
    check=None,
    info=None,
    repeats: int = 3,
    quick_repeats: int = 3,
    quick_check: bool = False,
) -> None:
    register_case(
        BenchCase(
            name=name,
            suite=SUITE,
            make=make,
            repeats=repeats,
            quick_repeats=quick_repeats,
            check=check,
            quick_check=quick_check,
            info=info,
        ),
        replace=True,
    )


# ----------------------------------------------------------------------
# Fig. 5: deterministic worst-case pulse wave
# ----------------------------------------------------------------------
def _check_fig05(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    # The crafted wave tears the focus columns an order of magnitude further
    # apart than anything seen under random delays (Table 1, max 8.19 ns over
    # 250 runs), while respecting the Lemma 4 bound.
    paper_random_max = max(row["intra_max"] for row in table1.PAPER_TABLE1.values())
    assert summary["focus_skew"] > 2 * paper_random_max
    assert summary["focus_skew"] <= summary["lemma4_bound"]
    assert summary["focus_skew"] > summary["average_skew"]


def _info_fig05(result: Any, settings: BenchSettings) -> Dict[str, float]:
    summary = result.summary()
    return {
        "focus_skew_ns": round(summary["focus_skew"], 2),
        "lemma4_bound_ns": round(summary["lemma4_bound"], 2),
    }


# Deterministic construction: the check holds in every mode.
_case(
    "fig05",
    lambda settings: fig05.run,
    check=_check_fig05,
    info=_info_fig05,
    quick_check=True,
)


# ----------------------------------------------------------------------
# Fig. 8: pulse wave, zero layer-0 skew
# ----------------------------------------------------------------------
def _check_fig08(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    # The wave propagates evenly -- one layer per link delay, with the
    # per-layer spread bounded by roughly d+ and no skew build-up with height.
    timing = settings.config().timing
    assert timing.d_min <= summary["per_layer_time"] <= timing.d_max
    assert summary["max_intra_layer_skew"] <= timing.d_max
    assert summary["top_layer_spread"] <= 2 * timing.d_max


def _info_fig08(result: Any, settings: BenchSettings) -> Dict[str, float]:
    summary = result.summary()
    return {
        key: round(summary[key], 3)
        for key in ("max_intra_layer_skew", "top_layer_spread", "per_layer_time")
    }


_case(
    "fig08",
    lambda settings: lambda: fig08.run(settings.config()),
    check=_check_fig08,
    info=_info_fig08,
)


# ----------------------------------------------------------------------
# Fig. 9: pulse wave, ramped layer-0 skew
# ----------------------------------------------------------------------
def _check_fig09(result: Any, settings: BenchSettings) -> None:
    smoothing = result.smoothing_summary()
    config = settings.config()
    timing = config.timing
    # Lemma 3 / Fig. 9: the huge initial ramp ((W/2) d+ ~ 82 ns on the
    # paper's grid) is smoothed out above layer W - 2, where the intra-layer
    # skew falls back to the ~d+ regime of the zero-skew scenario.
    assert smoothing["initial_layer0_skew"] >= (config.width // 2) * timing.d_max - 1e-9
    assert smoothing["max_skew_above_horizon"] < smoothing["max_skew_below_horizon"]
    assert smoothing["max_skew_above_horizon"] <= timing.d_max + timing.epsilon


def _info_fig09(result: Any, settings: BenchSettings) -> Dict[str, float]:
    smoothing = result.smoothing_summary()
    return {
        "initial_layer0_skew_ns": round(smoothing["initial_layer0_skew"], 2),
        "max_skew_above_W-2": round(smoothing["max_skew_above_horizon"], 3),
        "max_skew_below_W-2": round(smoothing["max_skew_below_horizon"], 3),
    }


_case(
    "fig09",
    lambda settings: lambda: fig09.run(settings.config()),
    check=_check_fig09,
    info=_info_fig09,
)


# ----------------------------------------------------------------------
# Fig. 10: cumulative skew histograms, scenario (i)
# ----------------------------------------------------------------------
def _check_fig10(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    timing = settings.config().timing
    # Sharp concentration with an exponential-looking tail -- the median
    # intra-layer skew is a fraction of eps, virtually nothing exceeds d+,
    # and the inter-layer histogram sits just above d- (its structural bias).
    assert summary["intra_median"] < timing.epsilon
    assert summary["intra_frac_above_dmax"] < 0.01
    assert timing.d_min <= summary["inter_median"] <= timing.d_max + timing.epsilon
    assert tail_fraction(result.intra_values, 2 * timing.epsilon) < tail_fraction(
        result.intra_values, timing.epsilon
    ) or tail_fraction(result.intra_values, timing.epsilon) == 0.0


def _info_fig10(result: Any, settings: BenchSettings) -> Dict[str, float]:
    summary = result.summary()
    return {
        key: round(summary[key], 4)
        for key in ("intra_median", "intra_frac_above_eps", "inter_median")
    }


_case(
    "fig10",
    lambda settings: lambda: fig10.run(settings.config()),
    check=_check_fig10,
    info=_info_fig10,
)


# ----------------------------------------------------------------------
# Fig. 11: cumulative skew histograms, scenario (iv)
# ----------------------------------------------------------------------
def _check_fig11(result: Any, settings: BenchSettings) -> None:
    # The scenario (i) reference is computed untimed, inside the check.
    reference = fig10.run(settings.config())
    timing = settings.config().timing
    # Unlike scenario (i), scenario (iv) shows a visible cluster near the end
    # of the tail (intra-layer skews close to d+, inter-layer skews close to
    # 2 d+), caused by the large initial skews of the lower layers.
    assert tail_fraction(result.intra_values, timing.d_min) > 0.05
    assert tail_fraction(reference.intra_values, timing.d_min) < 0.02
    assert tail_fraction(result.inter_values, 1.5 * timing.d_max) > tail_fraction(
        reference.inter_values, 1.5 * timing.d_max
    )


def _info_fig11(result: Any, settings: BenchSettings) -> Dict[str, float]:
    timing = settings.config().timing
    return {
        "frac_above_dmin_scenario_iv": round(
            tail_fraction(result.intra_values, timing.d_min), 4
        )
    }


_case(
    "fig11",
    lambda settings: lambda: fig11.run(settings.config()),
    check=_check_fig11,
    info=_info_fig11,
)


# ----------------------------------------------------------------------
# Fig. 12: per-layer inter-layer skews, scenarios (iii)/(iv)
# ----------------------------------------------------------------------
def _check_fig12(result: Any, settings: BenchSettings) -> None:
    import numpy as np

    config = settings.config()
    ramp = result.series[Scenario.RAMP]
    flat = result.series[Scenario.UNIFORM_DMAX]
    smoothing_layer = result.smoothing_layer(Scenario.RAMP, tolerance=1.0)
    # Scenario (iv)'s large low-layer inter-layer skews shrink and settle
    # after roughly W - 2 layers (Lemma 3), whereas scenario (iii)'s
    # per-layer maxima are flat (within ~2 d+) from the very first layer.
    assert ramp["max"][0] > ramp["max"][-1]
    assert smoothing_layer <= 2 * config.width
    assert float(np.nanmax(flat["max"])) <= 2 * config.timing.d_max
    # The structural d- bias of the inter-layer skew is visible everywhere.
    assert float(np.nanmin(flat["min"])) >= config.timing.d_min - 1e-6


def _info_fig12(result: Any, settings: BenchSettings) -> Dict[str, float]:
    config = settings.config()
    ramp = result.series[Scenario.RAMP]
    return {
        "ramp_smoothing_layer": result.smoothing_layer(Scenario.RAMP, tolerance=1.0),
        "lemma3_horizon": config.width - 2,
        "ramp_max_skew_layer1": round(float(ramp["max"][0]), 2),
        "ramp_max_skew_top": round(float(ramp["max"][-1]), 2),
    }


_case(
    "fig12",
    lambda settings: lambda: fig12.run(settings.config()),
    check=_check_fig12,
    info=_info_fig12,
)


# ----------------------------------------------------------------------
# Fig. 13: one Byzantine node at (1, 19), scenario (i)
# ----------------------------------------------------------------------
def _check_fig13(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    timing = settings.config().timing
    # The skew increase emanating from the faulty node fades with the
    # distance from the fault location (fault locality), and even next to
    # the fault the skew stays within a few d+.
    assert summary["max_skew_at_distance_1"] >= summary["max_skew_at_distance_ge_3"] - 1e-9
    assert summary["max_skew_at_distance_ge_3"] <= timing.d_max + timing.epsilon
    assert summary["max_intra_skew"] <= 4 * timing.d_max


def _info_fig13(result: Any, settings: BenchSettings) -> Dict[str, float]:
    return {key: round(value, 3) for key, value in result.summary().items()}


_case(
    "fig13",
    lambda settings: lambda: fig13.run(settings.config()),
    check=_check_fig13,
    info=_info_fig13,
)


# ----------------------------------------------------------------------
# Fig. 14: five Byzantine nodes, scenario (iv)
# ----------------------------------------------------------------------
def _check_fig14(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    # Despite five Byzantine nodes the pulse still reaches every correct
    # node, and the worst skews stay in the same regime as the paper's
    # Table 2 (they do not accumulate with the number of faults).
    assert summary["num_faults"] == 5.0
    assert summary["all_correct_triggered"] == 1.0
    paper_iv_max_with_one_fault = 34.59  # Table 2, scenario (iv)
    assert summary["max_intra_skew"] <= 1.5 * paper_iv_max_with_one_fault


def _info_fig14(result: Any, settings: BenchSettings) -> Dict[str, Any]:
    return {
        "fault_positions": str(result.fault_positions),
        "max_intra_skew": round(result.summary()["max_intra_skew"], 3),
    }


_case(
    "fig14",
    lambda settings: lambda: fig14.run(settings.config()),
    check=_check_fig14,
    info=_info_fig14,
)


# ----------------------------------------------------------------------
# Fig. 15: skew vs number of Byzantine faults, scenario (iii)
# ----------------------------------------------------------------------
def _check_fig15(result: Any, settings: BenchSettings) -> None:
    timing = settings.config().timing
    max_f = max(f for f, _ in result.statistics)
    # 1. skews increase moderately with f -- far slower than the worst-case
    #    allowance of roughly 5 f d+;
    growth = result.max_skew_growth(hops=0)
    assert growth >= -1e-9
    assert growth < 5 * max_f * timing.d_max / 2
    # 2. discarding the faults' 1-hop out-neighbourhood removes most of the
    #    effect (strong fault locality);
    assert result.max_skew_growth(hops=1) <= result.max_skew_growth(hops=0) + 1e-9
    assert result.stats(max_f, 1).intra_max <= result.stats(max_f, 0).intra_max + 1e-9
    # 3. the averages barely move at all.
    assert result.stats(max_f, 0).intra_avg < result.stats(0, 0).intra_avg + 0.5


def _info_fig15(result: Any, settings: BenchSettings) -> Dict[str, float]:
    max_f = max(f for f, _ in result.statistics)
    return {
        "intra_max_f0": round(result.stats(0, 0).intra_max, 2),
        f"intra_max_f{max_f}_h0": round(result.stats(max_f, 0).intra_max, 2),
        f"intra_max_f{max_f}_h1": round(result.stats(max_f, 1).intra_max, 2),
    }


_case(
    "fig15",
    lambda settings: lambda: fig15.run(settings.config()),
    check=_check_fig15,
    info=_info_fig15,
)


# ----------------------------------------------------------------------
# Fig. 16: skew vs number of Byzantine faults, scenario (iv)
# ----------------------------------------------------------------------
def _check_fig16(result: Any, settings: BenchSettings) -> None:
    max_f = max(f for f, _ in result.statistics)
    # 1. a single fault already causes close to the worst observed skew --
    #    the effects of multiple faults do not accumulate;
    single = result.stats(1, 0).intra_max
    worst = max(result.stats(f, 0).intra_max for f, h in result.statistics if h == 0)
    assert single >= 0.4 * worst
    # 2. under the ramped scenario the maximal intra-layer skews typically
    #    exceed the inter-layer skews (the wave propagates diagonally);
    assert result.stats(max_f, 0).intra_max >= result.stats(max_f, 0).inter_max - 2.0
    # 3. locality: the h = 1 exclusion brings the maxima back down.
    assert result.stats(max_f, 1).intra_max <= result.stats(max_f, 0).intra_max + 1e-9


def _info_fig16(result: Any, settings: BenchSettings) -> Dict[str, float]:
    max_f = max(f for f, _ in result.statistics)
    return {
        "intra_max_f1": round(result.stats(1, 0).intra_max, 2),
        f"intra_max_f{max_f}": round(result.stats(max_f, 0).intra_max, 2),
        "inter_max_f1": round(result.stats(1, 0).inter_max, 2),
    }


_case(
    "fig16",
    lambda settings: lambda: fig16.run(settings.config()),
    check=_check_fig16,
    info=_info_fig16,
)


# ----------------------------------------------------------------------
# Fig. 17: single-fault worst case under scenario (iv)
# ----------------------------------------------------------------------
def _check_fig17(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    # The paper's construction generates ~5 d+ of intra-layer skew from a
    # single Byzantine node, with the inter-layer skew smaller by d+.  Our
    # construction reaches >= 3 d+ (vs ~1 d+ without the fault) and
    # reproduces the "smaller by d+" relation exactly.
    assert summary["max_intra_skew_in_dmax"] >= 3.0
    assert summary["intra_minus_inter_in_dmax"] == pytest.approx(1.0, abs=0.3)
    assert (
        summary["fault_free_max_intra_skew"]
        <= result.construction.timing.d_max + 1e-6
    )


def _info_fig17(result: Any, settings: BenchSettings) -> Dict[str, float]:
    summary = result.summary()
    return {
        "max_intra_skew_in_dmax": round(summary["max_intra_skew_in_dmax"], 2),
        "paper_value_in_dmax": 5.0,
        "inter_smaller_by_dmax": round(summary["intra_minus_inter_in_dmax"], 2),
    }


# Deterministic construction: the check holds in every mode.
_case(
    "fig17",
    lambda settings: fig17.run,
    check=_check_fig17,
    info=_info_fig17,
    quick_check=True,
)


# ----------------------------------------------------------------------
# Table 1: fault-free skew statistics, scenarios (i)-(iv)
# ----------------------------------------------------------------------
def _check_table1(result: Any, settings: BenchSettings) -> None:
    # Averages land close to the paper even with few runs, the scenario
    # ordering matches, and maxima stay within the same regime.
    for scenario in SCENARIOS:
        measured = result.statistics[scenario]
        paper = table1.PAPER_TABLE1[scenario]
        assert abs(measured.intra_avg - paper["intra_avg"]) < 0.3
        assert abs(measured.inter_avg - paper["inter_avg"]) < 0.5
        assert measured.intra_max <= paper["intra_max"] * 1.5 + 1.0
    assert (
        result.statistics[Scenario.RAMP].intra_avg
        > result.statistics[Scenario.ZERO].intra_avg
    )


def _info_table1(result: Any, settings: BenchSettings) -> Dict[str, float]:
    info: Dict[str, float] = {}
    for scenario in SCENARIOS:
        measured = result.statistics[scenario].as_row()
        paper = table1.PAPER_TABLE1[scenario]
        for key in ("intra_avg", "inter_avg"):
            info[f"{scenario.value}_{key}_measured"] = round(measured[key], 3)
            info[f"{scenario.value}_{key}_paper"] = paper[key]
    return info


_case(
    "table1",
    lambda settings: lambda: table1.run(settings.config()),
    check=_check_table1,
    info=_info_table1,
)


# ----------------------------------------------------------------------
# Table 2: skew statistics with one Byzantine node
# ----------------------------------------------------------------------
def _check_table2(result: Any, settings: BenchSettings) -> None:
    # A single Byzantine node increases the maxima over Table 1's fault-free
    # values but leaves the averages almost unchanged (fault locality).
    for scenario in SCENARIOS:
        measured = result.statistics[scenario]
        paper_clean = table1.PAPER_TABLE1[scenario]
        assert measured.intra_avg < paper_clean["intra_avg"] + 1.0
        assert measured.inter_min <= paper_clean["inter_min"] + 0.5


def _info_table2(result: Any, settings: BenchSettings) -> Dict[str, float]:
    info: Dict[str, float] = {}
    for scenario in SCENARIOS:
        measured = result.statistics[scenario].as_row()
        paper = table2.PAPER_TABLE2[scenario]
        info[f"{scenario.value}_intra_max_measured"] = round(measured["intra_max"], 3)
        info[f"{scenario.value}_intra_max_paper"] = paper["intra_max"]
    return info


_case(
    "table2",
    lambda settings: lambda: table2.run(settings.config()),
    check=_check_table2,
    info=_info_table2,
)


# ----------------------------------------------------------------------
# Table 3: stable skews and Condition 2 timeouts
# ----------------------------------------------------------------------
def _check_table3(result: Any, settings: BenchSettings) -> None:
    # Feeding the paper's sigma column through Condition 2 reproduces every
    # timeout column of Table 3 (up to the footnote-10 signal-duration
    # slack), and the measured-sigma derivation lands in the same regime.
    for scenario in SCENARIOS:
        derived = result.from_paper_sigma[scenario].as_row()
        paper = table3.PAPER_TABLE3[scenario]
        for key in ("T_link_min", "T_link_max", "T_sleep_min", "T_sleep_max", "S"):
            assert derived[key] == pytest.approx(paper[key], abs=0.2), (scenario, key)
        measured_sigma = result.measured_sigma[scenario]
        assert 0.3 * paper["sigma"] < measured_sigma < 2.5 * paper["sigma"]


def _info_table3(result: Any, settings: BenchSettings) -> Dict[str, float]:
    info: Dict[str, float] = {}
    for scenario in SCENARIOS:
        derived = result.from_paper_sigma[scenario].as_row()
        info[f"{scenario.value}_S_derived"] = round(derived["S"], 2)
        info[f"{scenario.value}_S_paper"] = table3.PAPER_TABLE3[scenario]["S"]
    return info


def _make_table3(settings: BenchSettings):
    config = settings.config()
    return lambda: table3.run(config, runs=max(3, config.runs // 2))


_case("table3", _make_table3, check=_check_table3, info=_info_table3)


# ----------------------------------------------------------------------
# Theorem 1: worst-case bounds vs observed maxima
# ----------------------------------------------------------------------
def _check_theorem1(result: Any, settings: BenchSettings) -> None:
    summary = result.summary()
    # The paper's Section 4.2 comparison -- the worst-case bound (quoted as
    # 21.63 ns) is far above the observed maxima (~3-7 ns), i.e. typical
    # skews are much better than worst case; and the bounds hold.
    assert result.holds()
    assert summary["paper_quoted_sigma_max"] == 21.63
    assert (
        summary["observed_intra_max_scenario_i"]
        < 0.5 * summary["theorem1_bound_quoted_in_paper"]
    )
    assert (
        summary["observed_intra_max_scenario_ii"]
        < summary["theorem1_bound_quoted_in_paper"]
    )


def _info_theorem1(result: Any, settings: BenchSettings) -> Dict[str, float]:
    summary = result.summary()
    return {
        key: round(summary[key], 3)
        for key in (
            "theorem1_bound_formula",
            "theorem1_bound_quoted_in_paper",
            "observed_intra_max_scenario_i",
            "observed_intra_max_scenario_ii",
        )
    }


_case(
    "theorem1",
    lambda settings: lambda: theorem1.run(settings.config()),
    check=_check_theorem1,
    info=_info_theorem1,
)


# ----------------------------------------------------------------------
# Ablation: Byzantine vs fail-silent fault severity
# ----------------------------------------------------------------------
def _check_ablation(result: Any, settings: BenchSettings) -> None:
    stats = result.statistics
    d_max = settings.config().timing.d_max
    # Paper's claim: fail-silent results are qualitatively similar to the
    # Byzantine ones but with smaller (or equal) skews, and both regimes
    # stay within a few d+ of the fault-free baseline.
    assert stats["fail_silent"].intra_max >= stats["fault_free"].intra_max - 1e-9
    assert stats["byzantine"].intra_max >= stats["fail_silent"].intra_max - 0.5
    assert stats["byzantine"].intra_max <= stats["fault_free"].intra_max + 4 * d_max
    assert stats["fail_silent"].intra_avg <= stats["byzantine"].intra_avg + 0.2


def _info_ablation(result: Any, settings: BenchSettings) -> Dict[str, float]:
    stats = result.statistics
    return {
        "intra_max_fault_free": round(stats["fault_free"].intra_max, 2),
        "intra_max_fail_silent": round(stats["fail_silent"].intra_max, 2),
        "intra_max_byzantine": round(stats["byzantine"].intra_max, 2),
    }


_case(
    "ablation_faulttype",
    lambda settings: lambda: ablation_faulttype.run(settings.config(), num_faults=3),
    check=_check_ablation,
    info=_info_ablation,
)


# ----------------------------------------------------------------------
# Dense frontier: the array engine on large grids (256^2 / 512^2 / 1000^2)
# ----------------------------------------------------------------------
# The paper's scaling argument is about *million-node* dies; these cases keep
# the dense numpy-frontier engine honest at that scale.  The timed workload is
# always the array engine (so the tracked baseline follows its performance);
# the shape checks replay the same specs on the reference heap solver to pin
# the exactness contract (bit-identical under deterministic delays) and the
# >= 10x speedup the engine exists for.  All checks run in quick mode too:
# they are deterministic, and the CI perf job is exactly where a perf or
# exactness regression must fail.


def get_array_engine():
    """The registered dense engine (resolved lazily to honour re-registration)."""
    from repro.engines import get_engine

    return get_engine("array")


def _dense_specs(side: int, delay_model: str, runs: int):
    from repro.engines import RunSpec

    return [
        RunSpec(
            layers=side,
            width=side,
            scenario="iii",
            delay_model=delay_model,
            entropy=4242,
            run_index=index,
        )
        for index in range(runs)
    ]


def _dense_workload(side: int, delay_model: str, runs: int):
    """Factory for a warmed dense workload callable.

    One untimed warm-up run amortizes allocator/page-cache effects that
    otherwise make a fresh process's first ~100 ms-scale medians swing by
    30-40% across invocations; timed repeats then vary only a few percent.
    """
    fn = lambda: get_array_engine().run_batch(  # noqa: E731
        _dense_specs(side, delay_model, runs)
    )
    fn()
    return fn


def _check_dense256(results: Any, settings: BenchSettings) -> None:
    import numpy as np

    from repro.engines import get_engine

    # Exactness contract at scale: under the deterministic max_skew delay
    # model the dense frontier must reproduce the heap solver bit for bit
    # (the solver replay covers one spec of the sweep; all must fire fully).
    assert all(result.all_correct_triggered() for result in results)
    result = results[0]
    reference = get_engine("solver").run(result.spec)
    np.testing.assert_array_equal(result.trigger_times, reference.trigger_times)
    np.testing.assert_array_equal(result.correct_mask, reference.correct_mask)


def _info_dense256(results: Any, settings: BenchSettings) -> Dict[str, float]:
    return {
        "grid_cells": float(results[0].trigger_times.size),
        "sweep_runs": float(len(results)),
    }


_case(
    "dense256_bitident",
    lambda settings: _dense_workload(256, "max_skew", 3),
    check=_check_dense256,
    info=_info_dense256,
    repeats=7,
    quick_repeats=7,
    quick_check=True,
)


def _check_dense512(results: Any, settings: BenchSettings) -> None:
    import time

    import numpy as np

    from repro.engines import get_engine

    assert all(result.all_correct_triggered() for result in results)
    specs = [result.spec for result in results]
    # Re-measure both engines here (the harness-timed number only covers the
    # array workload): per-spec array time over the sweep vs the solver's
    # batched planned path on one spec of the same shape.
    start = time.perf_counter()
    array_results = get_array_engine().run_batch(specs)
    array_per_spec = (time.perf_counter() - start) / len(specs)
    start = time.perf_counter()
    (solver_result,) = get_engine("solver").run_batch(specs[:1])
    solver_per_spec = time.perf_counter() - start
    np.testing.assert_array_equal(
        array_results[0].trigger_times, solver_result.trigger_times
    )
    speedup = solver_per_spec / array_per_spec
    assert speedup >= 10.0, (
        f"dense array engine no longer >= 10x the heap solver on a fault-free "
        f"512x512 sweep: {speedup:.1f}x "
        f"(solver {solver_per_spec:.3f}s/spec, array {array_per_spec:.3f}s/spec)"
    )
    _check_dense512._last = {"speedup": speedup}


def _info_dense512(results: Any, settings: BenchSettings) -> Dict[str, float]:
    last = getattr(_check_dense512, "_last", None) or {}
    info = {"sweep_runs": float(len(results))}
    if "speedup" in last:
        info["speedup_vs_solver"] = round(last["speedup"], 1)
    return info


_case(
    "dense512_sweep",
    lambda settings: _dense_workload(512, "constant", 4),
    check=_check_dense512,
    info=_info_dense512,
    repeats=7,
    quick_repeats=7,
    quick_check=True,
)


def _check_dense1000(results: Any, settings: BenchSettings) -> None:
    import numpy as np

    # A million-node die propagates a full pulse wave, every node fires, and
    # the wave is physically sane: monotone non-decreasing layer minima.
    (result,) = results
    assert result.trigger_times.shape == (1001, 1000)
    assert result.all_correct_triggered()
    layer_minima = result.trigger_times.min(axis=1)
    assert np.all(np.diff(layer_minima) >= 0)


def _info_dense1000(results: Any, settings: BenchSettings) -> Dict[str, float]:
    (result,) = results
    return {"grid_cells": float(result.trigger_times.size)}


_case(
    "dense1000_pulse",
    lambda settings: _dense_workload(1000, "constant", 1),
    check=_check_dense1000,
    info=_info_dense1000,
    repeats=7,
    quick_repeats=7,
    quick_check=True,
)
