"""Clock-tree suite: HEX vs H-tree scaling (the title claim)."""

from __future__ import annotations

from typing import Any, Dict

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.experiments import clocktree_comparison

SUITE = "clocktree"


def _make(settings: BenchSettings):
    return lambda: clocktree_comparison.run(
        tree_levels=(2, 3, 4, 5), runs_per_size=5, seed=0
    )


def _check(result: Any, settings: BenchSettings) -> None:
    rows = result.rows_data
    # The introduction's claims, measured:
    # 1. the tree's longest wire grows like sqrt(n); HEX links stay at unit
    #    length;
    assert result.wire_length_growth() >= 7.9  # 2^3 between 4^2 and 4^5 sinks
    assert all(row.hex_max_wire_length == 1.0 for row in rows)
    # 2. the tree's neighbour skew overtakes HEX's worst-case bound as n
    #    grows;
    assert rows[0].tree_max_neighbor_skew < rows[0].hex_neighbor_skew_bound
    assert rows[-1].tree_max_neighbor_skew > rows[-1].hex_neighbor_skew_bound
    # 3. a single internal tree fault takes out a quarter of the die, while
    #    HEX tolerates a growing number of isolated faults.
    assert rows[-1].tree_worst_internal_fault_loss == rows[-1].num_endpoints // 4
    assert (
        rows[-1].hex_expected_faults_tolerated
        > rows[0].hex_expected_faults_tolerated
    )


def _info(result: Any, settings: BenchSettings) -> Dict[str, Any]:
    rows = result.rows_data
    return {
        "endpoints": [row.num_endpoints for row in rows],
        "tree_max_wire": [row.tree_max_wire_length for row in rows],
        "tree_max_neighbor_skew": [
            round(row.tree_max_neighbor_skew, 2) for row in rows
        ],
        "hex_skew_bound": [round(row.hex_neighbor_skew_bound, 2) for row in rows],
    }


register_case(
    BenchCase(
        name="scaling",
        suite=SUITE,
        make=_make,
        repeats=3,
        quick_repeats=3,
        check=_check,
        quick_check=True,
        info=_info,
    ),
    replace=True,
)
