"""Soak suite: sustained streaming throughput and accumulator overhead.

Two tracked cases:

* ``sustained_pulses`` -- a short but complete soak run (epoch loop, fault
  churn, streaming observer, checkpoint-shaped accumulators); the timing
  gate guards the pulses/sec the long-horizon acceptance runs rely on.
* ``accumulator_overhead`` -- microbenchmark of one
  :class:`repro.stream.StreamSummary` observation (Welford moments plus the
  GK sketch, past the exact-buffer spill point), with the sketch's
  rank-error bound re-checked against a full ``np.sort`` of the stream.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict

import numpy as np

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.experiments.soak import SoakSpec, run_soak
from repro.stream import StreamSummary

SUITE = "soak"


def _spec(settings: BenchSettings) -> SoakSpec:
    pulses = 200 if settings.quick else 600
    return SoakSpec(
        layers=4,
        width=4,
        num_pulses=pulses,
        pulses_per_epoch=100,
        faults=1,
        seed=906,
        exact_cap=64,
    )


def _make_sustained_pulses(settings: BenchSettings):
    spec = _spec(settings)

    def workload() -> Dict[str, Any]:
        start = time.perf_counter()
        result = run_soak(spec)
        wall = time.perf_counter() - start
        return {"spec": spec, "result": result, "wall_s": wall}

    return workload


def _check_sustained_pulses(result: Dict[str, Any], settings: BenchSettings) -> None:
    soak = result["result"]
    spec = result["spec"]
    assert soak.pulses == spec.num_pulses, (
        f"soak completed {soak.pulses} of {spec.num_pulses} pulses"
    )
    # Windows where fault churn leaves every forwarding layer below two
    # correct firings yield no skew observation, so allow a small shortfall.
    assert spec.num_pulses * 0.9 <= soak.skew.count <= spec.num_pulses, (
        f"streamed {soak.skew.count} skew observations for {spec.num_pulses} pulses"
    )
    assert soak.faults_injected == spec.faults * spec.num_epochs
    assert soak.faults_healed == soak.faults_injected


def _info_sustained_pulses(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    soak = result["result"]
    return {
        "pulses": soak.pulses,
        "epochs": soak.epochs,
        "pulses_per_s": round(soak.pulses / result["wall_s"], 1),
        "recoveries": soak.recoveries,
        "skew_p95": round(soak.skew.quantile(0.95), 4),
    }


register_case(
    BenchCase(
        name="sustained_pulses",
        suite=SUITE,
        make=_make_sustained_pulses,
        repeats=3,
        quick_repeats=1,
        check=_check_sustained_pulses,
        quick_check=True,
        info=_info_sustained_pulses,
    ),
    replace=True,
)


def _make_accumulator_overhead(settings: BenchSettings):
    count = 50_000 if settings.quick else 200_000
    epsilon = 0.005
    values = np.random.default_rng(906).normal(size=count).tolist()

    def workload() -> Dict[str, Any]:
        summary = StreamSummary(epsilon=epsilon, exact_cap=512)
        start = time.perf_counter()
        for value in values:
            summary.add(value)
        wall = time.perf_counter() - start
        return {
            "summary": summary,
            "values": values,
            "epsilon": epsilon,
            "ns_per_add": wall / count * 1e9,
        }

    return workload


def _check_accumulator_overhead(result: Dict[str, Any], settings: BenchSettings) -> None:
    summary = result["summary"]
    ordered = np.sort(np.asarray(result["values"], dtype=float))
    count = ordered.size
    bound = math.ceil(result["epsilon"] * count)
    for q in (0.1, 0.5, 0.9, 0.95, 0.99):
        estimate = summary.quantile(q)
        rank = int(np.searchsorted(ordered, estimate, side="left"))
        target = max(1, min(count, math.ceil(q * count)))
        assert abs(rank + 1 - target) <= bound + 1, (
            f"GK rank error at q={q}: estimate at rank {rank + 1}, "
            f"target {target}, bound {bound}"
        )
    assert math.isclose(
        summary.moments.mean, float(np.mean(ordered)), rel_tol=1e-9, abs_tol=1e-9
    )


def _info_accumulator_overhead(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, Any]:
    summary = result["summary"]
    return {
        "observations": summary.count,
        "ns_per_add": round(result["ns_per_add"], 1),
        "sketch_entries": summary.quantiles._sketch.num_entries
        if summary.quantiles._sketch is not None
        else 0,
    }


register_case(
    BenchCase(
        name="accumulator_overhead",
        suite=SUITE,
        make=_make_accumulator_overhead,
        repeats=3,
        quick_repeats=1,
        check=_check_accumulator_overhead,
        quick_check=True,
        info=_info_accumulator_overhead,
    ),
    replace=True,
)
