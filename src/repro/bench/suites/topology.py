"""Topology suite: neighbour-table cache and per-topology solver runs.

Ports ``benchmarks/test_bench_topology.py`` onto the harness: the
neighbour-lookup sweep (cached tables vs the historical on-the-fly
reconstruction) and one seeded solver run per registered topology family on
the paper's 50x20 grid.  The emitted ``BENCH_topology.json`` is the perf
trajectory of the topology layer.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.core.topology import _IN_DIRECTION_ORDER, _OUT_DIRECTION_ORDER, HexGrid
from repro.engines import RunSpec, get_engine
from repro.topologies import build_topology

SUITE = "topology"

#: Lookup-sweep repetitions (the whole grid's tables per repetition).
LOOKUP_SWEEPS = 30

#: Topologies benchmarked through the solver engine.
SOLVER_TOPOLOGIES = ("cylinder", "torus", "patch", "degraded:nodes=5,links=5,seed=1")


def _uncached_lookup_sweep(grid: HexGrid) -> int:
    """The historical per-call behaviour: rebuild both dicts from the rule."""
    total = 0
    for node in grid.nodes():
        layer, column = node
        ins = {}
        for direction in _IN_DIRECTION_ORDER:
            neighbor = grid._raw_neighbor(layer, column, direction)
            if neighbor is not None:
                ins[direction] = neighbor
        outs = {}
        for direction in _OUT_DIRECTION_ORDER:
            neighbor = grid._raw_neighbor(layer, column, direction)
            if neighbor is not None:
                outs[direction] = neighbor
        total += len(ins) + len(outs)
    return total


def _cached_lookup_sweep(grid: HexGrid) -> int:
    """The table-backed path every hot loop now takes."""
    total = 0
    for node in grid.nodes():
        total += len(grid.in_neighbors(node)) + len(grid.out_neighbors(node))
    return total


def _best_of(function, *args, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        function(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _make_lookup(settings: BenchSettings):
    grid = HexGrid(layers=50, width=20)
    sweeps = LOOKUP_SWEEPS // 3 if settings.quick else LOOKUP_SWEEPS

    def workload() -> Dict[str, float]:
        expected = _uncached_lookup_sweep(grid)
        assert _cached_lookup_sweep(grid) == expected  # same answers, just cached
        uncached_s = _best_of(_uncached_lookup_sweep, grid, repeat=sweeps)
        cached_s = _best_of(_cached_lookup_sweep, grid, repeat=sweeps)
        return {
            "grid": "50x20",
            "uncached_sweep_s": uncached_s,
            "cached_sweep_s": cached_s,
            "speedup": uncached_s / cached_s if cached_s > 0 else float("inf"),
        }

    return workload


def _check_lookup(result: Dict[str, float], settings: BenchSettings) -> None:
    # The margin is wide in practice (~4-10x); assert a conservative floor so
    # a regression back to per-call reconstruction fails loudly.
    assert result["speedup"] > 1.5, (
        f"neighbour-table cache buys only {result['speedup']:.2f}x"
    )


register_case(
    BenchCase(
        name="neighbor_lookup",
        suite=SUITE,
        make=_make_lookup,
        repeats=3,
        quick_repeats=3,
        check=_check_lookup,
        quick_check=True,
        info=lambda result, settings: dict(result),
    ),
    replace=True,
)


def _make_solver_runs(settings: BenchSettings):
    def workload() -> Dict[str, Dict[str, float]]:
        per_topology: Dict[str, Dict[str, float]] = {}
        for topology in SOLVER_TOPOLOGIES:
            spec = RunSpec(
                kind="single_pulse",
                layers=50,
                width=20,
                scenario="iii",
                topology=topology,
                entropy=2013,
            )
            start = time.perf_counter()
            result = get_engine("solver").run(spec)
            elapsed = time.perf_counter() - start
            grid = build_topology(topology, 50, 20)
            per_topology[topology] = {
                "solver_run_s": elapsed,
                "num_nodes": float(getattr(grid, "num_present_nodes", grid.num_nodes)),
                "num_links": float(grid.num_links()),
                "all_correct_triggered": float(result.all_correct_triggered()),
            }
        return per_topology

    return workload


def _check_solver_runs(result: Dict[str, Dict[str, float]], settings: BenchSettings) -> None:
    assert set(result) == set(SOLVER_TOPOLOGIES)
    # The intact families must deliver the pulse everywhere; the damaged grid
    # legitimately starves hole-adjacent nodes, so only record its value.
    assert result["cylinder"]["all_correct_triggered"] == 1.0
    assert result["torus"]["all_correct_triggered"] == 1.0


def _info_solver_runs(result: Any, settings: BenchSettings) -> Dict[str, Any]:
    return {name: dict(data) for name, data in result.items()}


register_case(
    BenchCase(
        name="solver_per_topology",
        suite=SUITE,
        make=_make_solver_runs,
        repeats=3,
        quick_repeats=3,
        check=_check_solver_runs,
        quick_check=True,
        info=_info_solver_runs,
    ),
    replace=True,
)
