"""DES suite: the stabilization experiments (Figs. 18-19).

Both cases run the discrete-event engine through the experiments layer on
the smaller 20x10 stabilization grid (the historical ``bench_stab_config``),
with the fault-count / parameter-choice sweeps of the corresponding figures.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.experiments import fig18, fig19
from repro.faults.models import FaultType

SUITE = "des"


def _make_fig18(settings: BenchSettings):
    config = settings.stab_config()
    return lambda: fig18.run(
        config,
        fault_counts=(0, 2, 5),
        choices=(0, 3),
        fault_types=(FaultType.BYZANTINE, FaultType.FAIL_SILENT),
    )


def _check_fig18(result: Any, settings: BenchSettings) -> None:
    config = settings.stab_config()
    conservative = result.point(0, 0, FaultType.BYZANTINE)
    aggressive = result.point(5, 3, FaultType.BYZANTINE)
    # 1. with conservative skew bounds HEX stabilizes within the first couple
    #    of pulses in every run;
    assert conservative.num_stabilized == conservative.num_runs
    assert conservative.average <= 3.0
    # 2. aggressive bounds (C = 3) can only slow stabilization down and may
    #    leave a minority of runs unstabilized within the observed pulses;
    assert aggressive.num_stabilized <= conservative.num_stabilized
    if aggressive.num_stabilized:
        assert aggressive.average >= conservative.average - 1e-9
    # 3. everything stays far below the Theorem 2 worst case of L + 1 pulses.
    assert conservative.average < (config.layers + 1) / 2
    # 4. fail-silent faults behave no worse than Byzantine ones.
    fail_silent = result.point(5, 0, FaultType.FAIL_SILENT)
    assert (
        fail_silent.num_stabilized
        >= result.point(5, 0, FaultType.BYZANTINE).num_stabilized - 1
    )


def _info_fig18(result: Any, settings: BenchSettings) -> Dict[str, float]:
    conservative = result.point(0, 0, FaultType.BYZANTINE)
    aggressive = result.point(5, 3, FaultType.BYZANTINE)
    return {
        "avg_stab_time_f0_C0": round(conservative.average, 2),
        "stabilized_f0_C0": conservative.num_stabilized,
        "avg_stab_time_f5_C3": round(aggressive.average, 2),
        "stabilized_f5_C3": aggressive.num_stabilized,
        "theorem2_worst_case": settings.stab_config().layers + 1,
    }


register_case(
    BenchCase(
        name="fig18",
        suite=SUITE,
        make=_make_fig18,
        repeats=3,
        quick_repeats=3,
        check=_check_fig18,
        info=_info_fig18,
    ),
    replace=True,
)


def _make_fig19(settings: BenchSettings):
    config = settings.stab_config()
    return lambda: fig19.run(
        config,
        fault_counts=(0, 3),
        choices=(0, 2),
        fault_types=(FaultType.BYZANTINE,),
    )


def _check_fig19(result: Any, settings: BenchSettings) -> None:
    config = settings.stab_config()
    conservative = result.point(0, 0, FaultType.BYZANTINE)
    with_faults = result.point(3, 0, FaultType.BYZANTINE)
    # The qualitative picture of Fig. 18 carries over to the ramped scenario
    # -- stabilization within the first pulses for conservative bounds, even
    # with faults present, far below the Theorem 2 worst case.
    assert conservative.num_stabilized == conservative.num_runs
    assert conservative.average <= 3.0
    assert with_faults.num_stabilized >= with_faults.num_runs - 1
    if with_faults.num_stabilized:
        assert with_faults.average <= (config.layers + 1) / 2


def _info_fig19(result: Any, settings: BenchSettings) -> Dict[str, float]:
    conservative = result.point(0, 0, FaultType.BYZANTINE)
    with_faults = result.point(3, 0, FaultType.BYZANTINE)
    return {
        "avg_stab_time_f0_C0": round(conservative.average, 2),
        "avg_stab_time_f3_C0": round(with_faults.average, 2),
    }


register_case(
    BenchCase(
        name="fig19",
        suite=SUITE,
        make=_make_fig19,
        repeats=3,
        quick_repeats=3,
        check=_check_fig19,
        info=_info_fig19,
    ),
    replace=True,
)
