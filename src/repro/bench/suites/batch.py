"""Batch suite: ``Engine.run_batch`` vs per-spec execution.

The speedup gate of the batched solver hot path: a serial 100-cell
single-pulse sweep on the paper's 50x20 grid (25 cells per scenario), run
once through a per-spec ``engine.run()`` loop and once through
``engine.run_batch``.  The check pins both halves of the contract -- results
bit-identical, wall clock at least twice as fast -- so a regression in
either the fast sweep or the grid sharing fails the benchmark itself, not
just the timing gate.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

import numpy as np

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import register_case
from repro.engines import RunSpec, get_engine

SUITE = "batch"

#: The speedup floor the batched path must clear on the 100-cell sweep.
TARGET_SPEEDUP = 2.0


def _sweep_specs(settings: BenchSettings) -> List[RunSpec]:
    if settings.quick:
        layers, width, cells = 20, 10, 40
    else:
        layers, width, cells = 50, 20, 100
    scenarios = ("i", "ii", "iii", "iv")
    return [
        RunSpec(
            kind="single_pulse",
            layers=layers,
            width=width,
            scenario=scenarios[index % len(scenarios)],
            entropy=2013,
            run_index=index,
        )
        for index in range(cells)
    ]


def _make(settings: BenchSettings):
    engine = get_engine("solver")
    specs = _sweep_specs(settings)
    # Warm both paths once so neither pays first-call costs inside the
    # measured region (plan compilation is part of the batch design, but the
    # comparison should not hinge on import-time effects).
    engine.run(specs[0])
    engine.run_batch(specs[:2])

    def workload() -> Dict[str, Any]:
        start = time.perf_counter()
        serial = [engine.run(spec) for spec in specs]
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        batched = engine.run_batch(specs)
        batch_s = time.perf_counter() - start
        return {
            "specs": specs,
            "serial": serial,
            "batched": batched,
            "serial_s": serial_s,
            "batch_s": batch_s,
            "speedup": serial_s / batch_s if batch_s > 0 else float("inf"),
        }

    return workload


def _check(result: Dict[str, Any], settings: BenchSettings) -> None:
    for per_spec, batched in zip(result["serial"], result["batched"]):
        assert np.array_equal(
            per_spec.trigger_times, batched.trigger_times, equal_nan=True
        )
        assert np.array_equal(per_spec.correct_mask, batched.correct_mask)
        assert np.array_equal(
            per_spec.layer0_times, batched.layer0_times, equal_nan=True
        )
    assert result["speedup"] >= TARGET_SPEEDUP, (
        f"run_batch speedup {result['speedup']:.2f}x on the "
        f"{len(result['specs'])}-cell sweep is below the {TARGET_SPEEDUP}x target"
    )


def _info(result: Dict[str, Any], settings: BenchSettings) -> Dict[str, float]:
    return {
        "cells": len(result["specs"]),
        "serial_s": round(result["serial_s"], 3),
        "batch_s": round(result["batch_s"], 3),
        "speedup": round(result["speedup"], 2),
    }


register_case(
    BenchCase(
        name="run_batch",
        suite=SUITE,
        make=_make,
        repeats=3,
        quick_repeats=3,
        check=_check,
        quick_check=True,
        info=_info,
    ),
    replace=True,
)
