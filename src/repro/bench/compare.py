"""Baseline comparison: the perf-regression gate behind ``bench --compare``.

Fresh suite payloads are compared case by case against committed baselines:
a case *regresses* when its fresh median exceeds the baseline median by more
than the tolerance percentage.  Baselines can be a single combined
``BENCH_suite.json``, a single per-suite file, or a directory of either.

Exit-code contract (consumed by the CI ``perf`` job):

* :data:`EXIT_OK` (0) -- every fresh case was compared, none regressed;
* :data:`EXIT_REGRESSION` (1) -- at least one case regressed;
* :data:`EXIT_MISSING_BASELINE` (3) -- a baseline file, suite or case was
  missing or incomparable (e.g. quick run against a full-mode baseline) and
  nothing regressed among the comparable ones.

Fresh cases with no baseline counterpart are *new* benchmarks: they are
reported but do not fail the gate (otherwise adding a benchmark would break
CI until its baseline lands in the same commit).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from repro.bench.runner import COMBINED_SCHEMA, SUITE_SCHEMA

__all__ = [
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_MISSING_BASELINE",
    "CaseComparison",
    "CompareReport",
    "load_baseline",
    "compare_payloads",
]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING_BASELINE = 3


@dataclass(frozen=True)
class CaseComparison:
    """One compared case: fresh vs baseline median."""

    suite: str
    name: str
    baseline_median_s: float
    fresh_median_s: float
    tolerance_pct: float

    @property
    def change_pct(self) -> float:
        """Relative median change in percent (positive = slower)."""
        if self.baseline_median_s == 0:
            return float("inf") if self.fresh_median_s > 0 else 0.0
        return 100.0 * (self.fresh_median_s / self.baseline_median_s - 1.0)

    @property
    def regressed(self) -> bool:
        """Whether the fresh median exceeds the tolerated slowdown."""
        return self.change_pct > self.tolerance_pct


@dataclass
class CompareReport:
    """The outcome of one baseline comparison."""

    tolerance_pct: float
    comparisons: List[CaseComparison] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseComparison]:
        """The comparisons that exceeded the tolerance."""
        return [comparison for comparison in self.comparisons if comparison.regressed]

    def exit_code(self) -> int:
        """The gate's exit code (regressions dominate missing baselines)."""
        if self.regressions:
            return EXIT_REGRESSION
        if self.missing:
            return EXIT_MISSING_BASELINE
        return EXIT_OK

    def render(self) -> str:
        """Human-readable comparison report."""
        lines: List[str] = [
            f"Benchmark comparison (tolerance {self.tolerance_pct:g}% on medians):"
        ]
        for comparison in self.comparisons:
            verdict = "REGRESSED" if comparison.regressed else "ok"
            lines.append(
                f"  {comparison.suite}/{comparison.name}: "
                f"{comparison.baseline_median_s:.4f}s -> "
                f"{comparison.fresh_median_s:.4f}s "
                f"({comparison.change_pct:+.1f}%) {verdict}"
            )
        for message in self.new_cases:
            lines.append(f"  new (no baseline, not gated): {message}")
        for message in self.missing:
            lines.append(f"  missing: {message}")
        verdict = {
            EXIT_OK: "PASS",
            EXIT_REGRESSION: f"FAIL: {len(self.regressions)} regression(s)",
            EXIT_MISSING_BASELINE: "FAIL: missing baseline(s)",
        }[self.exit_code()]
        lines.append(verdict)
        return "\n".join(lines)


def _suites_of(payload: Dict[str, Any], origin: str) -> Dict[str, Dict[str, Any]]:
    """Suite payloads contained in one JSON document."""
    schema = payload.get("schema")
    if schema == COMBINED_SCHEMA:
        return dict(payload.get("suites", {}))
    if schema == SUITE_SCHEMA:
        return {payload["suite"]: payload}
    raise ValueError(
        f"{origin}: not a bench payload (schema {schema!r}; expected "
        f"{SUITE_SCHEMA!r} or {COMBINED_SCHEMA!r})"
    )


def load_baseline(path: str) -> Dict[str, Dict[str, Any]]:
    """Load baseline suite payloads from a file or a directory.

    A directory is scanned for ``BENCH_*.json`` files (combined payloads
    contribute all their suites).  A missing path returns an empty mapping --
    the comparison then reports every suite as missing rather than crashing.
    """
    baseline_path = Path(path)
    suites: Dict[str, Dict[str, Any]] = {}
    if baseline_path.is_dir():
        for file in sorted(baseline_path.glob("BENCH_*.json")):
            payload = json.loads(file.read_text())
            suites.update(_suites_of(payload, str(file)))
    elif baseline_path.is_file():
        payload = json.loads(baseline_path.read_text())
        suites.update(_suites_of(payload, str(baseline_path)))
    return suites


def compare_payloads(
    fresh: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Dict[str, Any]],
    tolerance_pct: float = 25.0,
) -> CompareReport:
    """Compare fresh suite payloads against baseline ones."""
    if tolerance_pct < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance_pct}")
    report = CompareReport(tolerance_pct=tolerance_pct)
    for suite, fresh_payload in sorted(fresh.items()):
        base_payload = baseline.get(suite)
        if base_payload is None:
            report.missing.append(f"suite {suite!r} has no baseline")
            continue
        if base_payload.get("mode") != fresh_payload.get("mode"):
            report.missing.append(
                f"suite {suite!r}: baseline mode {base_payload.get('mode')!r} "
                f"does not match fresh mode {fresh_payload.get('mode')!r}"
            )
            continue
        base_cases = base_payload.get("cases", {})
        fresh_cases = fresh_payload.get("cases", {})
        for name, fresh_case in sorted(fresh_cases.items()):
            base_case = base_cases.get(name)
            if base_case is None:
                report.new_cases.append(f"{suite}/{name}")
                continue
            report.comparisons.append(
                CaseComparison(
                    suite=suite,
                    name=name,
                    baseline_median_s=float(base_case["stats"]["median_s"]),
                    fresh_median_s=float(fresh_case["stats"]["median_s"]),
                    tolerance_pct=tolerance_pct,
                )
            )
        for name in sorted(set(base_cases) - set(fresh_cases)):
            report.missing.append(
                f"{suite}/{name} is in the baseline but was not run"
            )
    # Baseline suites absent from the fresh run would otherwise fall out of
    # tracking silently (e.g. a suite import accidentally dropped); callers
    # running a deliberate subset filter the baseline first.
    for suite in sorted(set(baseline) - set(fresh)):
        report.missing.append(f"baseline suite {suite!r} was not run")
    return report
