"""Declarative benchmark cases and the settings they shrink under.

A :class:`BenchCase` packages one tracked workload: a factory building the
(zero-argument) workload callable from the active :class:`BenchSettings`, the
repeat counts of the full and quick modes, an optional shape check asserting
the workload's scientific invariants, and an optional extractor of headline
numbers for the emitted ``BENCH_*.json`` records.

:class:`BenchSettings` is the single knob bundle every case shrinks under:
``quick`` mode (the CI perf job) keeps the paper's 50x20 grid but cuts the
Monte Carlo run counts (repeat counts stay at three so compared medians are
noise-robust), ``paper`` mode (``HEX_BENCH_PAPER=1``) restores the full
published configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = ["BenchCase", "BenchSettings"]

#: Runs per data point of the default (full) mode -- the historical
#: ``HEX_BENCH_RUNS`` default of the benchmark suite.
DEFAULT_RUNS = 10

#: Runs per data point of quick mode (the CI perf job).
QUICK_RUNS = 4


@dataclass(frozen=True)
class BenchSettings:
    """The mode knobs a benchmark run executes under.

    Attributes
    ----------
    quick:
        Shrink run counts and repeats for a CI-sized run.
    runs:
        Explicit runs-per-point override (the ``HEX_BENCH_RUNS`` knob);
        ``None`` uses the mode default.
    paper:
        Run the full paper-scale configuration (``HEX_BENCH_PAPER=1``);
        mutually exclusive with ``quick``.
    """

    quick: bool = False
    runs: Optional[int] = None
    paper: bool = False

    def __post_init__(self) -> None:
        if self.quick and self.paper:
            raise ValueError("quick and paper modes are mutually exclusive")
        if self.runs is not None and self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")

    @classmethod
    def from_env(cls, quick: bool = False) -> "BenchSettings":
        """Settings from the historical environment knobs.

        ``HEX_BENCH_RUNS`` overrides the runs per data point and
        ``HEX_BENCH_PAPER=1`` selects the full paper-scale configuration,
        exactly as the pre-harness benchmark conftest honoured them.
        A ``quick`` request under ``HEX_BENCH_PAPER=1`` is a hard conflict
        (silently running the hours-long paper configuration instead of a
        CI-sized one would be far worse than an error).
        """
        runs = os.environ.get("HEX_BENCH_RUNS")
        paper = os.environ.get("HEX_BENCH_PAPER") == "1"
        if quick and paper:
            raise ValueError(
                "quick mode conflicts with HEX_BENCH_PAPER=1; unset the "
                "environment variable or drop --quick"
            )
        return cls(
            quick=quick,
            runs=int(runs) if runs else None,
            paper=paper,
        )

    @property
    def mode(self) -> str:
        """The provenance tag of emitted records: quick / full / paper."""
        if self.quick:
            return "quick"
        return "paper" if self.paper else "full"

    def effective_runs(self) -> int:
        """Monte Carlo runs per data point under these settings."""
        if self.runs is not None:
            return self.runs
        return QUICK_RUNS if self.quick else DEFAULT_RUNS

    def config(self):
        """The experiment configuration of the single-pulse benchmarks.

        The paper's 50x20 grid in every mode (the shape checks compare
        against published 50x20 numbers); only the run count shrinks.
        """
        from repro.experiments.config import ExperimentConfig

        if self.paper:
            return ExperimentConfig.paper()
        return ExperimentConfig(runs=self.effective_runs())

    def stab_config(self):
        """The (smaller) configuration of the stabilization benchmarks."""
        from repro.experiments.config import ExperimentConfig

        if self.paper:
            return ExperimentConfig.paper()
        return ExperimentConfig(
            layers=20,
            width=10,
            runs=max(3, self.effective_runs() // 2),
            num_pulses=8,
        )


@dataclass(frozen=True)
class BenchCase:
    """One declarative benchmark: workload factory, repeats, check, info.

    Attributes
    ----------
    name:
        Case name, unique within its suite (``fig08``, ``run_batch`` ...).
    suite:
        Suite the case belongs to (``solver``, ``des``, ``campaign``,
        ``topology``, ``clocktree``, ``batch``).
    make:
        Factory called once per benchmark run with the active
        :class:`BenchSettings`; returns the zero-argument workload the
        harness times.  Setup done inside ``make`` is excluded from the
        timed region.
    repeats, quick_repeats:
        Timed repetitions in full and quick mode.  Statistics are computed
        over all repeats; the workloads are seeded and deterministic, so
        repeating them measures host noise, not the science.
    check:
        Optional shape check ``check(result, settings)`` run once on the
        last repeat's return value; assertion failures fail the benchmark
        (the reproduction claims are part of the tracked surface).
    quick_check:
        Whether ``check`` also gates quick mode.  Deterministic or
        floor-style checks (bit-identity, conservative speedup floors) set
        this; statistical shape checks tuned for the full run counts leave
        it off, so the CI-sized quick run stays a pure timing gate.
    info:
        Optional ``info(result, settings) -> dict`` extractor of headline
        scalars recorded next to the timings in ``BENCH_*.json``.
    """

    name: str
    suite: str
    make: Callable[[BenchSettings], Callable[[], Any]]
    repeats: int = 3
    quick_repeats: int = 1
    check: Optional[Callable[[Any, BenchSettings], None]] = None
    quick_check: bool = False
    info: Optional[Callable[[Any, BenchSettings], Dict[str, Any]]] = None

    def __post_init__(self) -> None:
        if not self.name or not self.suite:
            raise ValueError("BenchCase needs a non-empty name and suite")
        if self.repeats < 1 or self.quick_repeats < 1:
            raise ValueError("repeat counts must be >= 1")
        if self.quick_repeats > self.repeats:
            raise ValueError(
                f"quick_repeats ({self.quick_repeats}) must not exceed "
                f"repeats ({self.repeats}) -- quick mode only ever shrinks"
            )

    def effective_repeats(self, settings: BenchSettings) -> int:
        """Timed repetitions under ``settings``."""
        return self.quick_repeats if settings.quick else self.repeats

    def checks_under(self, settings: BenchSettings) -> bool:
        """Whether the shape check applies under ``settings``."""
        if self.check is None:
            return False
        return self.quick_check or not settings.quick
