"""Unified benchmark harness: declarative cases, robust stats, perf gating.

The perf trajectory of the reproduction runs through this package:

* :class:`~repro.bench.case.BenchCase` -- one declarative benchmark
  (workload factory, repeat counts, quick-mode shrink, shape check, headline
  info extractor) and :class:`~repro.bench.case.BenchSettings`, the mode
  knobs (quick / full / paper, ``HEX_BENCH_RUNS``);
* :mod:`~repro.bench.registry` -- the ``(suite, name)`` case registry the
  built-in suites (:mod:`repro.bench.suites`) populate;
* :mod:`~repro.bench.runner` -- times cases, computes robust statistics
  (min / median / IQR) and emits the schema-versioned ``BENCH_<suite>.json``
  files plus the combined ``BENCH_suite.json``, with all artifact paths
  routed through ``--out`` / ``BENCH_OUT`` (default: current directory);
* :mod:`~repro.bench.compare` -- the regression gate behind
  ``hex-repro bench --compare``, comparing fresh medians against committed
  baselines with a tolerance percentage and the documented exit codes.

The pytest wrappers under ``benchmarks/`` and the ``hex-repro bench`` CLI
are both thin clients of this package.
"""

from repro.bench.case import BenchCase, BenchSettings
from repro.bench.compare import (
    EXIT_MISSING_BASELINE,
    EXIT_OK,
    EXIT_REGRESSION,
    CompareReport,
    compare_payloads,
    load_baseline,
)
from repro.bench.registry import (
    available_suites,
    cases_in_suite,
    get_case,
    load_builtin_suites,
    register_case,
    unregister_case,
)
from repro.bench.runner import (
    COMBINED_SCHEMA,
    SCHEMA_VERSION,
    SUITE_SCHEMA,
    CaseResult,
    bench_output_dir,
    merge_case_result,
    run_case,
    run_suites,
    suite_filename,
)
from repro.bench.stats import robust_stats

__all__ = [
    "BenchCase",
    "BenchSettings",
    "CaseResult",
    "CompareReport",
    "COMBINED_SCHEMA",
    "SCHEMA_VERSION",
    "SUITE_SCHEMA",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_MISSING_BASELINE",
    "available_suites",
    "bench_output_dir",
    "cases_in_suite",
    "compare_payloads",
    "get_case",
    "load_baseline",
    "load_builtin_suites",
    "merge_case_result",
    "register_case",
    "robust_stats",
    "run_case",
    "run_suites",
    "suite_filename",
    "unregister_case",
]
