"""The benchmark runner: time cases, compute stats, emit BENCH JSON files.

Output layout (all paths resolved by :func:`bench_output_dir`):

* ``BENCH_<suite>.json`` -- one schema-versioned payload per suite
  (``hex-repro/bench-suite/v1``);
* ``BENCH_suite.json`` -- the combined payload over every suite that ran
  (``hex-repro/bench/v1``), what the CI regression gate archives.

The historical benchmark modules wrote their artifacts to the repository
root unconditionally; all paths now route through an explicit ``--out``
directory or the ``BENCH_OUT`` environment variable, with the current
working directory as the compatibility default (the repo root when invoked
from a checkout, as CI does).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.bench.case import BenchCase, BenchSettings
from repro.bench.registry import available_suites, cases_in_suite, load_builtin_suites
from repro.bench.stats import robust_stats
from repro.checks.schemas import schema

__all__ = [
    "SUITE_SCHEMA",
    "COMBINED_SCHEMA",
    "SCHEMA_VERSION",
    "CaseResult",
    "bench_output_dir",
    "suite_filename",
    "run_case",
    "run_suites",
    "merge_case_result",
]

#: Schema tag of one suite's payload.
SUITE_SCHEMA = schema("bench-suite")

#: Schema tag of the combined all-suites payload (``BENCH_suite.json``).
COMBINED_SCHEMA = schema("bench")

#: Version number shared by both payload kinds.
SCHEMA_VERSION = 1

#: File name of the combined payload.
COMBINED_FILENAME = "BENCH_suite.json"


def bench_output_dir(out: Optional[str] = None) -> Path:
    """Resolve the benchmark artifact directory.

    Precedence: explicit ``out`` argument (the CLI's ``--out``), then the
    ``BENCH_OUT`` environment variable, then the current working directory
    (which preserves the historical repo-root artifacts when invoked from a
    checkout).
    """
    if out:
        return Path(out)
    env = os.environ.get("BENCH_OUT")
    if env:
        return Path(env)
    return Path.cwd()


def suite_filename(suite: str) -> str:
    """The per-suite artifact name, ``BENCH_<suite>.json``."""
    return f"BENCH_{suite}.json"


@dataclass
class CaseResult:
    """Timings, statistics and headline numbers of one executed case."""

    case: BenchCase
    times_s: List[float]
    stats: Dict[str, float]
    info: Dict[str, Any] = field(default_factory=dict)
    #: ``repro.obs`` counter deltas over the timed repeats; populated only
    #: when the process runs with metrics enabled (``bench --metrics``).
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable record of this case."""
        payload = {
            "repeats": len(self.times_s),
            "times_s": [float(value) for value in self.times_s],
            "stats": dict(self.stats),
            "info": _json_safe(self.info),
        }
        if self.metrics:
            payload["metrics"] = dict(self.metrics)
        return payload


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays and tuples into plain JSON values."""
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def provenance(settings: BenchSettings) -> Dict[str, Any]:
    """The environment record stamped into every payload."""
    return {
        "mode": settings.mode,
        "runs_per_point": settings.effective_runs(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def run_case(
    case: BenchCase, settings: BenchSettings, check: bool = True
) -> CaseResult:
    """Build, time and (optionally) shape-check one case.

    The factory runs once outside the timed region; the workload runs
    ``case.effective_repeats(settings)`` times.  The check and the info
    extractor see the last repeat's return value.

    When the process runs with ``repro.obs`` metrics enabled, the counter
    deltas accumulated across the timed repeats are captured into
    :attr:`CaseResult.metrics` (and land under a ``"metrics"`` key in the
    BENCH JSON).  Gated ``--compare`` runs should stay uninstrumented: the
    committed baselines were timed without observability.
    """
    workload = case.make(settings)
    registry = obs.registry()
    counters_before = registry.counters() if registry is not None else None
    times: List[float] = []
    result: Any = None
    for _ in range(case.effective_repeats(settings)):
        start = time.perf_counter()
        result = workload()
        times.append(time.perf_counter() - start)
    metrics = (
        obs.metrics_delta(counters_before, registry.counters())
        if registry is not None
        else {}
    )
    if check and case.checks_under(settings):
        case.check(result, settings)
    info = case.info(result, settings) if case.info is not None else {}
    return CaseResult(
        case=case, times_s=times, stats=robust_stats(times), info=info, metrics=metrics
    )


def _suite_payload(
    suite: str, results: Sequence[CaseResult], settings: BenchSettings
) -> Dict[str, Any]:
    return {
        "schema": SUITE_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "mode": settings.mode,
        "provenance": provenance(settings),
        "cases": {result.case.name: result.to_json_dict() for result in results},
    }


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_suites(
    suites: Optional[Sequence[str]] = None,
    settings: Optional[BenchSettings] = None,
    out: Optional[str] = None,
    check: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run (a selection of) registered suites and write their artifacts.

    Returns the per-suite payloads keyed by suite name; the same payloads
    land on disk as ``BENCH_<suite>.json`` plus the combined
    ``BENCH_suite.json``.
    """
    load_builtin_suites()
    settings = settings if settings is not None else BenchSettings.from_env()
    selected = list(suites) if suites else list(available_suites())
    known = available_suites()
    for suite in selected:
        if suite not in known:
            raise ValueError(
                f"unknown bench suite {suite!r}; available suites: {', '.join(known)}"
            )
    out_dir = bench_output_dir(out)
    payloads: Dict[str, Dict[str, Any]] = {}
    for suite in selected:
        results: List[CaseResult] = []
        for case in cases_in_suite(suite):
            if log is not None:
                log(f"[{suite}] {case.name} ...")
            result = run_case(case, settings, check=check)
            if log is not None:
                log(
                    f"[{suite}] {case.name}: median "
                    f"{result.stats['median_s']:.3f}s over {len(result.times_s)} repeat(s)"
                )
            results.append(result)
        payload = _suite_payload(suite, results, settings)
        payloads[suite] = payload
        _write_json(out_dir / suite_filename(suite), payload)
    combined = {
        "schema": COMBINED_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "mode": settings.mode,
        "provenance": provenance(settings),
        "suites": payloads,
    }
    _write_json(out_dir / COMBINED_FILENAME, combined)
    return payloads


def merge_case_result(
    out_dir: Path, suite: str, settings: BenchSettings, result: CaseResult
) -> Path:
    """Merge one case result into the suite's on-disk payload.

    The pytest wrappers execute cases one test at a time (possibly a ``-k``
    subset); read-modify-write keeps ``BENCH_<suite>.json`` complete
    whichever subset ran last, matching the historical behaviour of the
    topology benchmark module.
    """
    path = Path(out_dir) / suite_filename(suite)
    payload: Dict[str, Any] = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    if payload.get("schema") != SUITE_SCHEMA or payload.get("mode") != settings.mode:
        payload = _suite_payload(suite, [], settings)
    payload["provenance"] = provenance(settings)
    payload.setdefault("cases", {})[result.case.name] = result.to_json_dict()
    _write_json(path, payload)
    return path
