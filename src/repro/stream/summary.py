"""One-stop streaming summary: moments + quantiles behind a single ``add``.

:class:`StreamSummary` is the accumulator the soak runner feeds per-pulse
observations into: Welford moments (count/mean/variance), exact min/max and
hybrid exact/GK quantiles, all in bounded memory, all JSON-round-trippable
for checkpoints.  :meth:`StreamSummary.stats` renders the headline numbers
(count, mean, std, min, max, p50, p95) as a plain dict -- the shape that
lands in soak checkpoints, ``hex-repro soak`` reports and
``trace summarize`` output.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional

from repro.stream.moments import StreamingMoments
from repro.stream.quantiles import StreamingQuantiles

__all__ = ["StreamSummary"]


class StreamSummary:
    """Combined bounded-memory moments + quantiles accumulator."""

    __slots__ = ("moments", "quantiles")

    def __init__(self, epsilon: float = 0.005, exact_cap: Optional[int] = 4096) -> None:
        self.moments = StreamingMoments()
        self.quantiles = StreamingQuantiles(epsilon=epsilon, exact_cap=exact_cap)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one observation into both accumulators."""
        self.moments.add(value)
        self.quantiles.add(value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold a sequence of observations, in order."""
        for value in values:
            self.add(value)

    def flush(self) -> None:
        """Flush any pending sketch buffer.

        The soak runner calls this at every epoch boundary so the serialized
        state is a deterministic function of the observation sequence alone
        -- a checkpoint-resumed run and an uninterrupted run reach identical
        states.
        """
        sketch = self.quantiles._sketch
        if sketch is not None:
            sketch.flush()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self.moments.count

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (see :class:`~repro.stream.quantiles.StreamingQuantiles`)."""
        return self.quantiles.quantile(q)

    def stats(self) -> Dict[str, float]:
        """Headline numbers: count, mean, std, min, max, p50, p95."""
        count = self.moments.count
        return {
            "count": float(count),
            "mean": self.moments.mean if count else math.nan,
            "std": self.moments.std(),
            "min": self.moments.min if count else math.nan,
            "max": self.moments.max if count else math.nan,
            "p50": self.quantiles.median(),
            "p95": self.quantiles.quantile(0.95),
        }

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable state of both accumulators."""
        return {
            "moments": self.moments.to_json_dict(),
            "quantiles": self.quantiles.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "StreamSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        summary = cls()
        summary.moments = StreamingMoments.from_json_dict(payload["moments"])
        summary.quantiles = StreamingQuantiles.from_json_dict(payload["quantiles"])
        return summary
