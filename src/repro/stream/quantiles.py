"""Bounded-memory streaming quantiles: a Greenwald-Khanna sketch + hybrid.

Two layers:

* :class:`GKSketch` -- the Greenwald-Khanna (SIGMOD'01) epsilon-approximate
  quantile summary.  **Documented error bound**: after ``n`` insertions,
  ``query(q)`` returns a stream element whose rank in the sorted stream is
  within ``ceil(epsilon * n)`` of the target rank ``ceil(q * n)`` (``q = 0``
  and ``q = 1`` return the exact minimum/maximum, which the sketch never
  merges away).  The bound is *worst-case over orderings* -- it holds on
  adversarially sorted input, unlike the heuristic P-squared estimator --
  and the sketch retains O((1/epsilon) * log(epsilon * n)) tuples.
* :class:`StreamingQuantiles` -- an exact buffer up to ``exact_cap``
  observations (queried through ``numpy.quantile``/``numpy.median``, so
  results are bit-identical to a post-hoc NumPy computation) that spills
  into a :class:`GKSketch` once the cap is exceeded.  ``exact_cap=None``
  keeps the buffer exact forever (the campaign wall-time path, where the
  observations already live in memory anyway).

Both serialize exactly through ``to_json_dict``/``from_json_dict``:
inserting the same values after a round trip yields the same state as an
uninterrupted run, which is what makes soak checkpoints resumable without
drift.  Compression runs at deterministic points (every ``buffer_size``
insertions and on :meth:`GKSketch.flush`), never on wall-clock or memory
pressure, for the same reason.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["GKSketch", "StreamingQuantiles", "interpolated_quantile"]


def interpolated_quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sequence.

    The ``position = q * (n - 1)`` convention of ``numpy.quantile``'s default
    method (shared with :func:`repro.obs.metrics.timer_stats`, which routes
    through this helper).
    """
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class GKSketch:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Entries are ``[value, g, delta]`` tuples sorted by value: ``g`` is the
    gap in minimum rank to the previous entry, ``delta`` the extra rank
    uncertainty, so entry ``i`` covers true ranks
    ``[sum(g_1..g_i), sum(g_1..g_i) + delta_i]``.  Insertions buffer into a
    sorted batch of ``buffer_size = ceil(1 / (2 * epsilon))`` values that is
    merged (and the summary compressed) in one linear pass -- the standard
    amortization that keeps per-observation cost O(log buffer_size).
    """

    __slots__ = ("epsilon", "count", "_entries", "_buffer", "_buffer_size")

    def __init__(self, epsilon: float = 0.005) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)
        self.count: int = 0
        self._entries: List[List[float]] = []  # [value, g, delta], sorted by value
        self._buffer: List[float] = []
        self._buffer_size = max(1, math.ceil(1.0 / (2.0 * self.epsilon)))

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one observation (amortized through the sorted batch buffer)."""
        self._buffer.append(float(value))
        if len(self._buffer) >= self._buffer_size:
            self.flush()

    def extend(self, values: Iterable[float]) -> None:
        """Insert a sequence of observations."""
        for value in values:
            self.add(value)

    def flush(self) -> None:
        """Merge the pending batch into the summary and compress.

        Called automatically every ``buffer_size`` insertions and before any
        query or serialization, so the summary state is a deterministic
        function of the insertion sequence alone.
        """
        if not self._buffer:
            return
        batch = sorted(self._buffer)
        self._buffer = []
        # New interior tuples claim the maximum uncertainty the invariant
        # allows, floor(2 eps n) - 1 (Greenwald-Khanna insert rule); batch
        # members landing before the current minimum / after the current
        # maximum are exact (delta = 0), which keeps q=0 / q=1 exact.
        delta_new = max(0, int(2.0 * self.epsilon * self.count) - 1)
        merged: List[List[float]] = []
        entries = self._entries
        i = j = 0
        while i < len(entries) or j < len(batch):
            if j >= len(batch) or (i < len(entries) and entries[i][0] <= batch[j]):
                merged.append(entries[i])
                i += 1
            else:
                at_edge = not merged or (i >= len(entries))
                merged.append([batch[j], 1.0, 0.0 if at_edge else float(delta_new)])
                j += 1
        self.count += len(batch)
        self._entries = merged
        self._compress()

    def _compress(self) -> None:
        """Merge adjacent tuples while the GK invariant ``g + delta <= 2 eps n`` holds."""
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = int(2.0 * self.epsilon * self.count)
        if threshold < 2:
            return
        compressed: List[List[float]] = [entries[-1]]
        # Sweep right to left, folding entry i into its successor when the
        # combined tuple still satisfies the invariant.  The first entry is
        # never folded away, so the stream minimum survives exactly.
        for i in range(len(entries) - 2, 0, -1):
            entry = entries[i]
            successor = compressed[-1]
            if entry[1] + successor[1] + successor[2] <= threshold:
                successor[1] += entry[1]
            else:
                compressed.append(entry)
        compressed.append(entries[0])
        compressed.reverse()
        self._entries = compressed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: float) -> float:
        """A value whose rank is within ``ceil(epsilon * n)`` of ``ceil(q * n)``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self.flush()
        if self.count == 0:
            return math.nan
        entries = self._entries
        if q <= 0.0:
            return entries[0][0]
        if q >= 1.0:
            return entries[-1][0]
        target = max(1, min(self.count, math.ceil(q * self.count)))
        slack = self.epsilon * self.count
        rmin = 0.0
        best_value = entries[0][0]
        best_error = math.inf
        for value, g, delta in entries:
            rmin += g
            rmax = rmin + delta
            if target - rmin <= slack and rmax - target <= slack:
                return value
            error = max(abs(target - rmin), abs(rmax - target))
            if error < best_error:
                best_error = error
                best_value = value
        return best_value

    @property
    def num_entries(self) -> int:
        """Number of retained tuples (the O((1/eps) log(eps n)) bound)."""
        return len(self._entries) + len(self._buffer)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable state (flushes the pending batch first)."""
        self.flush()
        return {
            "epsilon": self.epsilon,
            "count": self.count,
            "entries": [[entry[0], int(entry[1]), int(entry[2])] for entry in self._entries],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "GKSketch":
        """Rebuild a sketch from :meth:`to_json_dict` output."""
        sketch = cls(epsilon=float(payload["epsilon"]))
        sketch.count = int(payload["count"])
        sketch._entries = [
            [float(value), float(g), float(delta)] for value, g, delta in payload["entries"]
        ]
        return sketch


class StreamingQuantiles:
    """Hybrid exact/sketch quantile accumulator.

    Up to ``exact_cap`` observations are buffered and queried through
    ``numpy.quantile`` / ``numpy.median`` -- bit-identical to computing the
    same statistic post hoc on the full array.  Past the cap the buffer
    spills into a :class:`GKSketch` and queries carry that sketch's
    documented ``ceil(epsilon * n)`` rank-error bound.  ``exact_cap=None``
    never spills (exact forever).
    """

    __slots__ = ("epsilon", "exact_cap", "_exact", "_sketch")

    def __init__(self, epsilon: float = 0.005, exact_cap: Optional[int] = 4096) -> None:
        if exact_cap is not None and exact_cap < 1:
            raise ValueError(f"exact_cap must be >= 1 or None, got {exact_cap}")
        self.epsilon = float(epsilon)
        self.exact_cap = exact_cap
        self._exact: Optional[List[float]] = []
        self._sketch: Optional[GKSketch] = None

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        if self._sketch is not None:
            return self._sketch.count + len(self._sketch._buffer)
        return len(self._exact or [])

    @property
    def is_exact(self) -> bool:
        """Whether queries are still exact (below the cap)."""
        return self._sketch is None

    def add(self, value: float) -> None:
        """Fold one observation in."""
        if self._sketch is not None:
            self._sketch.add(value)
            return
        exact = self._exact
        assert exact is not None
        exact.append(float(value))
        if self.exact_cap is not None and len(exact) > self.exact_cap:
            self._spill()

    def extend(self, values: Iterable[float]) -> None:
        """Fold a sequence of observations, in order."""
        for value in values:
            self.add(value)

    def _spill(self) -> None:
        """Hand the exact buffer over to a GK sketch (cap exceeded)."""
        sketch = GKSketch(epsilon=self.epsilon)
        sketch.extend(self._exact or [])
        self._sketch = sketch
        self._exact = None

    def quantile(self, q: float) -> float:
        """The ``q``-quantile: exact (NumPy linear interpolation) below the cap,
        sketch-approximate (rank error ``<= ceil(epsilon * n)``) above it."""
        if self._sketch is not None:
            return self._sketch.query(q)
        exact = self._exact
        if not exact:
            return math.nan
        return float(np.quantile(np.asarray(exact, dtype=float), q))

    def median(self) -> float:
        """The median (``numpy.median``-exact below the cap)."""
        if self._sketch is not None:
            return self._sketch.query(0.5)
        exact = self._exact
        if not exact:
            return math.nan
        return float(np.median(np.asarray(exact, dtype=float)))

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable state (exact buffer or sketch state)."""
        payload: Dict[str, Any] = {"epsilon": self.epsilon, "exact_cap": self.exact_cap}
        if self._sketch is not None:
            payload["sketch"] = self._sketch.to_json_dict()
        else:
            payload["exact"] = list(self._exact or [])
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "StreamingQuantiles":
        """Rebuild an accumulator from :meth:`to_json_dict` output."""
        cap = payload.get("exact_cap")
        quantiles = cls(
            epsilon=float(payload["epsilon"]),
            exact_cap=None if cap is None else int(cap),
        )
        if "sketch" in payload:
            quantiles._sketch = GKSketch.from_json_dict(payload["sketch"])
            quantiles._exact = None
        else:
            quantiles._exact = [float(value) for value in payload["exact"]]
        return quantiles
