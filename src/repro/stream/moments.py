"""Streaming moment accumulators: count/mean/variance in O(1) memory.

:class:`StreamingMoments` implements Welford's online algorithm for the mean
and the centred second moment ``M2`` -- numerically stable under the
catastrophic-cancellation conditions that break the naive
``sum(x^2) - n*mean^2`` formula -- plus exact min/max tracking and a plain
sequential running sum.

The running ``total`` is deliberately *naive* (``total += x`` in arrival
order, not Welford-derived ``mean * count``): feeding the accumulator the
same values in the same order as a ``float(sum(values))`` call reproduces
that sum bit for bit, which is what lets
:meth:`repro.campaign.runner.CampaignResult.wall_time_summary` route its
totals through this class without changing a single historical byte.

Everything round-trips through :meth:`to_json_dict` /
:meth:`from_json_dict` exactly (Python's ``json`` emits shortest-round-trip
float reprs), so a checkpointed accumulator resumes with the identical
state the uninterrupted run would have had.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable

__all__ = ["StreamingMoments"]


class StreamingMoments:
    """Welford count/mean/variance plus exact min/max and a sequential sum.

    Memory is O(1) regardless of how many observations are fed in.
    """

    __slots__ = ("count", "mean", "m2", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.mean: float = 0.0
        #: Centred second moment ``sum((x - mean)^2)`` (Welford's ``M2``).
        self.m2: float = 0.0
        #: Naive sequential running sum (bit-identical to ``float(sum(...))``
        #: over the same values in the same order).
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold a sequence of observations, in order."""
        for value in values:
            self.add(value)

    def variance(self, ddof: int = 0) -> float:
        """Variance with ``ddof`` delta degrees of freedom (NaN when undefined)."""
        if self.count <= ddof:
            return math.nan
        return self.m2 / (self.count - ddof)

    def std(self, ddof: int = 0) -> float:
        """Standard deviation (square root of :meth:`variance`)."""
        variance = self.variance(ddof)
        return math.sqrt(variance) if variance == variance else math.nan

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable state (exact float round trip)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self.m2,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "StreamingMoments":
        """Rebuild an accumulator from :meth:`to_json_dict` output."""
        moments = cls()
        moments.count = int(payload["count"])
        moments.mean = float(payload["mean"])
        moments.m2 = float(payload["m2"])
        moments.total = float(payload["total"])
        moments.min = math.inf if payload.get("min") is None else float(payload["min"])
        moments.max = -math.inf if payload.get("max") is None else float(payload["max"])
        return moments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std():.6g})"
        )
