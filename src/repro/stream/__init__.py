"""Bounded-memory streaming accumulators (``repro.stream``).

The observability substrate for runs that never fit in memory: incremental
count/mean/variance via Welford's algorithm, exact min/max, and
epsilon-approximate quantiles via a Greenwald-Khanna sketch with a
documented worst-case rank-error bound (see
:class:`~repro.stream.quantiles.GKSketch`).  Everything serializes exactly
to JSON and back, so soak checkpoints resume without statistical drift.

This package is a dependency-free leaf in the layer DAG (NumPy only):
``analysis``, ``obs``, ``campaign``, ``experiments`` and ``bench`` may all
import it without cycles.  It never draws randomness and never reads wall
clocks -- accumulator state is a pure function of the observation sequence.
"""

from repro.stream.moments import StreamingMoments
from repro.stream.quantiles import GKSketch, StreamingQuantiles, interpolated_quantile
from repro.stream.summary import StreamSummary

__all__ = [
    "GKSketch",
    "StreamSummary",
    "StreamingMoments",
    "StreamingQuantiles",
    "interpolated_quantile",
]
