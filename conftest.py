"""Pytest bootstrap: make the in-tree sources importable without installation.

The canonical way to work with the repository is an editable install
(``pip install -e .`` or, in offline environments lacking the ``wheel``
package, ``python setup.py develop``).  Adding ``src/`` to ``sys.path`` here
additionally lets ``pytest tests/`` and ``pytest benchmarks/`` run straight
from a fresh checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
